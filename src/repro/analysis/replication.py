"""Replication methodology: CI-driven sequential simulation.

The figure benchmarks use single long runs with batch-means intervals; for
point estimates that must carry a defensible confidence interval (the
EXPERIMENTS.md tables), the textbook-correct procedure is independent
replications with a sequential stopping rule: keep adding replications
until the Student-t interval on the mean queueing delay is narrower than
the requested relative half-width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.runner import SweepRunner

from repro.config import SystemConfig
from repro.core.system import simulate
from repro.errors import AnalysisError, ConfigurationError
from repro.sim.stats import confidence_interval
from repro.workload.arrivals import Workload


@dataclass(frozen=True)
class ReplicationEstimate:
    """A mean-delay estimate from independent replications."""

    mean_delay: float
    ci_halfwidth: float
    replications: int
    values: Tuple[float, ...]

    @property
    def relative_halfwidth(self) -> float:
        """Half-width as a fraction of the mean (inf for a zero mean)."""
        if self.mean_delay == 0:
            return math.inf
        return self.ci_halfwidth / abs(self.mean_delay)

    def normalized(self, service_rate: float) -> Tuple[float, float]:
        """(mu_s * d, mu_s * halfwidth) for the paper's y-axis."""
        return (self.mean_delay * service_rate,
                self.ci_halfwidth * service_rate)


def _replication_units(config: SystemConfig, workload: Workload,
                       horizon: float, warmup: float, arbitration: str,
                       base_seed: int, first: int, count: int) -> list:
    """Work units for replications ``first .. first + count - 1``."""
    from repro.runner import WorkUnit

    params = {
        "config": str(config),
        "arrival_rate": workload.arrival_rate,
        "transmission_rate": workload.transmission_rate,
        "service_rate": workload.service_rate,
        "horizon": horizon,
        "warmup": warmup,
        "arbitration": arbitration,
    }
    return [WorkUnit("replication-delay", base_seed + index, params)
            for index in range(first, first + count)]


def replicate_delay(config: Union[SystemConfig, str], workload: Workload,
                    horizon: float, warmup: float,
                    target_relative_halfwidth: float = 0.05,
                    confidence: float = 0.95,
                    min_replications: int = 5, max_replications: int = 50,
                    base_seed: int = 100,
                    arbitration: str = "priority",
                    jobs: Optional[int] = None,
                    runner: Optional["SweepRunner"] = None) -> ReplicationEstimate:
    """Replicate until the delay CI is tight enough, in waves of ``jobs``.

    Each replication uses an independent seed (``base_seed + i``); the
    procedure stops at the first point past ``min_replications`` where the
    Student-t interval's relative half-width drops below the target, and
    raises if ``max_replications`` cannot achieve it (the caller should
    lengthen the horizon instead of silently accepting a loose answer).

    With ``jobs > 1`` (or a ``runner``), replications are submitted in
    waves of the worker count instead of strictly one at a time.  The
    stopping rule still scans values in replication order and truncates at
    the first index that satisfies the target, so the estimate is
    bit-identical to the sequential procedure — a wave may merely compute a
    few replications past the stopping point, whose values are discarded.
    The ``jobs=1`` path is exactly the original sequential loop.
    """
    if isinstance(config, str):
        config = SystemConfig.parse(config)
    if not 0 < target_relative_halfwidth < 1:
        raise ConfigurationError(
            f"target relative half-width must be in (0, 1), "
            f"got {target_relative_halfwidth}")
    if min_replications < 2:
        raise ConfigurationError("need at least 2 replications for a CI")

    values: List[float] = []

    def estimate_at(count: int) -> Optional[ReplicationEstimate]:
        """The sequential stopping rule, applied to values[:count]."""
        if count < min_replications:
            return None
        prefix = values[:count]
        mean, halfwidth = confidence_interval(prefix, confidence=confidence)
        if mean > 0 and halfwidth / mean <= target_relative_halfwidth:
            return ReplicationEstimate(mean_delay=mean,
                                       ci_halfwidth=halfwidth,
                                       replications=count,
                                       values=tuple(prefix))
        return None

    if runner is None and (jobs is None or jobs == 1):
        for replication in range(max_replications):
            result = simulate(config, workload, horizon=horizon, warmup=warmup,
                              seed=base_seed + replication,
                              arbitration=arbitration)
            values.append(result.mean_queueing_delay)
            estimate = estimate_at(len(values))
            if estimate is not None:
                return estimate
    else:
        from repro.runner import SweepRunner

        if runner is None:
            runner = SweepRunner(jobs=jobs)
        wave_size = max(1, runner.effective_jobs)
        while len(values) < max_replications:
            count = min(wave_size, max_replications - len(values))
            units = _replication_units(config, workload, horizon, warmup,
                                       arbitration, base_seed,
                                       first=len(values), count=count)
            values.extend(runner.run_values(units))
            for stop in range(len(values) - count + 1, len(values) + 1):
                estimate = estimate_at(stop)
                if estimate is not None:
                    return estimate

    mean, halfwidth = confidence_interval(values, confidence=confidence)
    raise AnalysisError(
        f"CI still {halfwidth / mean:.1%} of the mean after "
        f"{max_replications} replications (target "
        f"{target_relative_halfwidth:.1%}); lengthen the horizon")


def compare_with_replications(first: Union[SystemConfig, str],
                              second: Union[SystemConfig, str],
                              workload: Workload, horizon: float,
                              warmup: float,
                              confidence: float = 0.95,
                              replications: int = 10,
                              base_seed: int = 100) -> Tuple[float, float, bool]:
    """Paired-seed comparison of two configurations.

    Runs both systems on common random numbers (same seed per pair) and
    returns ``(mean difference first - second, CI half-width,
    significantly_different)``.  Pairing cancels workload noise, so far
    fewer replications resolve an ordering than independent runs would.
    """
    if replications < 2:
        raise ConfigurationError("need at least 2 paired replications")
    differences: List[float] = []
    for replication in range(replications):
        seed = base_seed + replication
        first_result = simulate(first, workload, horizon=horizon,
                                warmup=warmup, seed=seed)
        second_result = simulate(second, workload, horizon=horizon,
                                 warmup=warmup, seed=seed)
        differences.append(first_result.mean_queueing_delay
                           - second_result.mean_queueing_delay)
    mean, halfwidth = confidence_interval(differences, confidence=confidence)
    return mean, halfwidth, abs(mean) > halfwidth
