"""Replication methodology: CI-driven sequential simulation.

The figure benchmarks use single long runs with batch-means intervals; for
point estimates that must carry a defensible confidence interval (the
EXPERIMENTS.md tables), the textbook-correct procedure is independent
replications with a sequential stopping rule: keep adding replications
until the Student-t interval on the mean queueing delay is narrower than
the requested relative half-width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.runner import SweepRunner

from repro.config import SystemConfig
from repro.core.system import simulate
from repro.errors import AnalysisError, ConfigurationError
from repro.sim.stats import confidence_interval
from repro.workload.arrivals import Workload


@dataclass(frozen=True)
class ReplicationEstimate:
    """A mean-delay estimate from independent replications."""

    mean_delay: float
    ci_halfwidth: float
    replications: int
    values: Tuple[float, ...]

    @property
    def relative_halfwidth(self) -> float:
        """Half-width as a fraction of the mean (inf for a zero mean)."""
        if self.mean_delay == 0:
            return math.inf
        return self.ci_halfwidth / abs(self.mean_delay)

    def normalized(self, service_rate: float) -> Tuple[float, float]:
        """(mu_s * d, mu_s * halfwidth) for the paper's y-axis."""
        return (self.mean_delay * service_rate,
                self.ci_halfwidth * service_rate)


def _replication_units(config: SystemConfig, workload: Workload,
                       horizon: float, warmup: float, arbitration: str,
                       base_seed: int, first: int, count: int) -> list:
    """Work units for replications ``first .. first + count - 1``."""
    from repro.runner import WorkUnit

    params = {
        "config": str(config),
        "arrival_rate": workload.arrival_rate,
        "transmission_rate": workload.transmission_rate,
        "service_rate": workload.service_rate,
        "horizon": horizon,
        "warmup": warmup,
        "arbitration": arbitration,
    }
    return [WorkUnit("replication-delay", base_seed + index, params)
            for index in range(first, first + count)]


def replicate_delay(config: Union[SystemConfig, str], workload: Workload,
                    horizon: float, warmup: float,
                    target_relative_halfwidth: float = 0.05,
                    confidence: float = 0.95,
                    min_replications: int = 5, max_replications: int = 50,
                    base_seed: int = 100,
                    arbitration: str = "priority",
                    jobs: Optional[int] = None,
                    runner: Optional["SweepRunner"] = None) -> ReplicationEstimate:
    """Replicate until the delay CI is tight enough, in waves of ``jobs``.

    Each replication uses an independent seed (``base_seed + i``); the
    procedure stops at the first point past ``min_replications`` where the
    Student-t interval's relative half-width drops below the target, and
    raises if ``max_replications`` cannot achieve it (the caller should
    lengthen the horizon instead of silently accepting a loose answer).

    With ``jobs > 1`` (or a ``runner``), replications are submitted in
    waves of the worker count instead of strictly one at a time.  The
    stopping rule still scans values in replication order and truncates at
    the first index that satisfies the target, so the estimate is
    bit-identical to the sequential procedure — a wave may merely compute a
    few replications past the stopping point, whose values are discarded.
    The ``jobs=1`` path is exactly the original sequential loop.
    """
    if isinstance(config, str):
        config = SystemConfig.parse(config)
    if not 0 < target_relative_halfwidth < 1:
        raise ConfigurationError(
            f"target relative half-width must be in (0, 1), "
            f"got {target_relative_halfwidth}")
    if min_replications < 2:
        raise ConfigurationError("need at least 2 replications for a CI")

    values: List[float] = []

    def estimate_at(count: int) -> Optional[ReplicationEstimate]:
        """The sequential stopping rule, applied to values[:count]."""
        if count < min_replications:
            return None
        prefix = values[:count]
        mean, halfwidth = confidence_interval(prefix, confidence=confidence)
        if mean > 0 and halfwidth / mean <= target_relative_halfwidth:
            return ReplicationEstimate(mean_delay=mean,
                                       ci_halfwidth=halfwidth,
                                       replications=count,
                                       values=tuple(prefix))
        return None

    if runner is None and (jobs is None or jobs == 1):
        for replication in range(max_replications):
            result = simulate(config, workload, horizon=horizon, warmup=warmup,
                              seed=base_seed + replication,
                              arbitration=arbitration)
            values.append(result.mean_queueing_delay)
            estimate = estimate_at(len(values))
            if estimate is not None:
                return estimate
    else:
        from repro.runner import SweepRunner

        if runner is None:
            runner = SweepRunner(jobs=jobs)
        wave_size = max(1, runner.effective_jobs)
        while len(values) < max_replications:
            count = min(wave_size, max_replications - len(values))
            units = _replication_units(config, workload, horizon, warmup,
                                       arbitration, base_seed,
                                       first=len(values), count=count)
            values.extend(runner.run_values(units))
            for stop in range(len(values) - count + 1, len(values) + 1):
                estimate = estimate_at(stop)
                if estimate is not None:
                    return estimate

    mean, halfwidth = confidence_interval(values, confidence=confidence)
    raise AnalysisError(
        f"CI still {halfwidth / mean:.1%} of the mean after "
        f"{max_replications} replications (target "
        f"{target_relative_halfwidth:.1%}); lengthen the horizon")


def _replication_delays(config: Union[SystemConfig, str], workload: Workload,
                        horizon: float, warmup: float, seeds: List[int],
                        engine: str) -> List[float]:
    """Per-seed mean delays via the requested engine (scalar fallback)."""
    if engine == "batched":
        from repro.sim.batched import batched_replication_delays, supports_batched

        if supports_batched(config, workload):
            return batched_replication_delays(config, workload,
                                              horizon=horizon, warmup=warmup,
                                              seeds=seeds)
    elif engine != "scalar":
        raise ConfigurationError(
            f"unknown simulation engine {engine!r}; "
            f"expected 'scalar' or 'batched'")
    return [simulate(config, workload, horizon=horizon, warmup=warmup,
                     seed=seed).mean_queueing_delay
            for seed in seeds]


def compare_with_replications(first: Union[SystemConfig, str],
                              second: Union[SystemConfig, str],
                              workload: Workload, horizon: float,
                              warmup: float,
                              confidence: float = 0.95,
                              replications: int = 10,
                              base_seed: int = 100,
                              crn: bool = True,
                              engine: str = "scalar"
                              ) -> Tuple[float, float, bool]:
    """Replicated comparison of two configurations.

    Returns ``(mean difference first - second, CI half-width,
    significantly_different)``.

    With ``crn=True`` (the default) both systems run on common random
    numbers — the same seed per replication pair, hence the same named
    arrival/transmission/service streams feeding both configurations — and
    the interval is the paired-t interval on the per-pair differences.
    Pairing cancels the workload noise common to both systems, so far
    fewer replications resolve an ordering than independent runs would (a
    regression test pins the paired half-width at or below the unpaired
    one on the bench workload).  ``crn=False`` runs the second system on
    disjoint seeds and reports the two-sample Welch interval.

    ``engine="batched"`` computes each configuration's replication wave
    with the lockstep engine of :mod:`repro.sim.batched` when the model is
    in its scope (per-replication results are bit-identical to the scalar
    engine, so ``crn`` pairing is unaffected); out-of-scope models fall
    back to scalar runs.
    """
    if replications < 2:
        raise ConfigurationError("need at least 2 paired replications")
    first_seeds = [base_seed + index for index in range(replications)]
    second_seeds = (first_seeds if crn else
                    [base_seed + replications + index
                     for index in range(replications)])
    first_values = _replication_delays(first, workload, horizon, warmup,
                                       first_seeds, engine)
    second_values = _replication_delays(second, workload, horizon, warmup,
                                        second_seeds, engine)
    if crn:
        differences = [a - b for a, b in zip(first_values, second_values)]
        mean, halfwidth = confidence_interval(differences,
                                              confidence=confidence)
        return mean, halfwidth, abs(mean) > halfwidth
    mean_first, half_first = confidence_interval(first_values,
                                                 confidence=confidence)
    mean_second, half_second = confidence_interval(second_values,
                                                   confidence=confidence)
    # Conservative unpaired interval: halfwidths add in quadrature (each
    # already carries its own t quantile at n - 1 degrees of freedom).
    mean = mean_first - mean_second
    halfwidth = math.hypot(half_first, half_second)
    return mean, halfwidth, abs(mean) > halfwidth
