"""Replication methodology: CI-driven sequential simulation.

The figure benchmarks use single long runs with batch-means intervals; for
point estimates that must carry a defensible confidence interval (the
EXPERIMENTS.md tables), the textbook-correct procedure is independent
replications with a sequential stopping rule: keep adding replications
until the Student-t interval on the mean queueing delay is narrower than
the requested relative half-width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from repro.config import SystemConfig
from repro.core.system import simulate
from repro.errors import AnalysisError, ConfigurationError
from repro.sim.stats import confidence_interval
from repro.workload.arrivals import Workload


@dataclass(frozen=True)
class ReplicationEstimate:
    """A mean-delay estimate from independent replications."""

    mean_delay: float
    ci_halfwidth: float
    replications: int
    values: Tuple[float, ...]

    @property
    def relative_halfwidth(self) -> float:
        """Half-width as a fraction of the mean (inf for a zero mean)."""
        if self.mean_delay == 0:
            return math.inf
        return self.ci_halfwidth / abs(self.mean_delay)

    def normalized(self, service_rate: float) -> Tuple[float, float]:
        """(mu_s * d, mu_s * halfwidth) for the paper's y-axis."""
        return (self.mean_delay * service_rate,
                self.ci_halfwidth * service_rate)


def replicate_delay(config: Union[SystemConfig, str], workload: Workload,
                    horizon: float, warmup: float,
                    target_relative_halfwidth: float = 0.05,
                    confidence: float = 0.95,
                    min_replications: int = 5, max_replications: int = 50,
                    base_seed: int = 100,
                    arbitration: str = "priority") -> ReplicationEstimate:
    """Sequentially replicate until the delay CI is tight enough.

    Each replication uses an independent seed (``base_seed + i``); the
    procedure stops at the first point past ``min_replications`` where the
    Student-t interval's relative half-width drops below the target, and
    raises if ``max_replications`` cannot achieve it (the caller should
    lengthen the horizon instead of silently accepting a loose answer).
    """
    if isinstance(config, str):
        config = SystemConfig.parse(config)
    if not 0 < target_relative_halfwidth < 1:
        raise ConfigurationError(
            f"target relative half-width must be in (0, 1), "
            f"got {target_relative_halfwidth}")
    if min_replications < 2:
        raise ConfigurationError("need at least 2 replications for a CI")
    values: List[float] = []
    for replication in range(max_replications):
        result = simulate(config, workload, horizon=horizon, warmup=warmup,
                          seed=base_seed + replication,
                          arbitration=arbitration)
        values.append(result.mean_queueing_delay)
        if len(values) < min_replications:
            continue
        mean, halfwidth = confidence_interval(values, confidence=confidence)
        if mean > 0 and halfwidth / mean <= target_relative_halfwidth:
            return ReplicationEstimate(mean_delay=mean,
                                       ci_halfwidth=halfwidth,
                                       replications=len(values),
                                       values=tuple(values))
    mean, halfwidth = confidence_interval(values, confidence=confidence)
    raise AnalysisError(
        f"CI still {halfwidth / mean:.1%} of the mean after "
        f"{max_replications} replications (target "
        f"{target_relative_halfwidth:.1%}); lengthen the horizon")


def compare_with_replications(first: Union[SystemConfig, str],
                              second: Union[SystemConfig, str],
                              workload: Workload, horizon: float,
                              warmup: float,
                              confidence: float = 0.95,
                              replications: int = 10,
                              base_seed: int = 100) -> Tuple[float, float, bool]:
    """Paired-seed comparison of two configurations.

    Runs both systems on common random numbers (same seed per pair) and
    returns ``(mean difference first - second, CI half-width,
    significantly_different)``.  Pairing cancels workload noise, so far
    fewer replications resolve an ordering than independent runs would.
    """
    if replications < 2:
        raise ConfigurationError("need at least 2 paired replications")
    differences: List[float] = []
    for replication in range(replications):
        seed = base_seed + replication
        first_result = simulate(first, workload, horizon=horizon,
                                warmup=warmup, seed=seed)
        second_result = simulate(second, workload, horizon=horizon,
                                 warmup=warmup, seed=seed)
        differences.append(first_result.mean_queueing_delay
                           - second_result.mean_queueing_delay)
    mean, halfwidth = confidence_interval(differences, confidence=confidence)
    return mean, halfwidth, abs(mean) > halfwidth
