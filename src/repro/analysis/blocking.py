"""Blocking-probability experiments (Section V).

The paper quotes, for an 8x8 Omega network with a free fabric and "random
sets of requesting processors and available resources":

* distributed resource search (RSIN): blocking probability about **0.15**;
* conventional address mapping: about **0.3** (Franklin's measurement).

These experiments regenerate the comparison.  Three schedulers are
measured on identical random instances:

* ``rsin`` — the clocked distributed scheduler (queries, rejects,
  re-routing);
* ``address_random`` — a centralized scheduler that fixes a random
  one-to-one mapping up front, then discovers the conflicts;
* ``address_sequential`` — as above but requests routed in index order
  (the scheduler variant with deterministic service order);
* ``optimal`` — exhaustive best mapping (small instances only), the floor
  any scheduler could reach.

Blocking is counted against what is *feasible*: with ``x`` requesters and
``y`` free resources, ``min(x, y)`` allocations are possible on a
non-blocking network, and every shortfall from that is charged as blocking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.matching import optimal_allocation
from repro.errors import ConfigurationError
from repro.networks.address_mapping import (
    random_mapping_outcome,
    sequential_tag_routing,
)
from repro.networks.omega import ClockedMultistageScheduler
from repro.networks.topology import MultistageTopology, make_topology
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class BlockingPoint:
    """Blocking probabilities at one request-set size."""

    request_size: int
    trials: int
    rsin: float
    address_random: float
    address_sequential: float
    optimal: Optional[float] = None


def blocking_comparison(topology_kind: str = "OMEGA", size: int = 8,
                        request_sizes: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
                        trials: int = 400, seed: int = 0,
                        include_optimal: bool = False,
                        optimal_limit: int = 64) -> List[BlockingPoint]:
    """Blocking probability versus request-set size, scheduler by scheduler.

    Each trial draws ``k`` requesting processors and ``k`` singly-resourced
    free output ports uniformly at random on a free network, then resolves
    the batch with each scheduler.  ``include_optimal`` adds the optimal
    floor, computed by the polynomial max-flow allocator
    (:func:`repro.analysis.matching.optimal_allocation`) up to
    ``optimal_limit`` requests.
    """
    rng = RandomStreams(seed).stream("blocking-comparison")
    points: List[BlockingPoint] = []
    for k in request_sizes:
        if not 1 <= k <= size:
            raise ConfigurationError(f"request size {k} out of range for N={size}")
        rsin_blocked = random_blocked = sequential_blocked = 0
        optimal_blocked: Optional[int] = 0 if (include_optimal and
                                               k <= optimal_limit) else None
        feasible_total = 0
        for _ in range(trials):
            requesters = rng.sample(range(size), k)
            free_ports = rng.sample(range(size), k)
            feasible_total += k
            topology = make_topology(topology_kind, size)
            scheduler = ClockedMultistageScheduler(
                topology, {port: 1 for port in free_ports})
            result = scheduler.run(requesters)
            rsin_blocked += k - len(result.allocated)
            outcome = random_mapping_outcome(
                topology, list(requesters), list(free_ports), rng)
            random_blocked += k - len(outcome.routed)
            ordered = sequential_tag_routing(
                topology, list(zip(sorted(requesters), sorted(free_ports))))
            sequential_blocked += k - len(ordered.routed)
            if optimal_blocked is not None:
                best, _mapping = optimal_allocation(topology, requesters,
                                                    free_ports)
                optimal_blocked += k - best
        points.append(BlockingPoint(
            request_size=k,
            trials=trials,
            rsin=rsin_blocked / feasible_total,
            address_random=random_blocked / feasible_total,
            address_sequential=sequential_blocked / feasible_total,
            optimal=(optimal_blocked / feasible_total
                     if optimal_blocked is not None else None),
        ))
    return points


def full_permutation_blocking(topology_kind: str = "OMEGA", size: int = 8,
                              trials: int = 1000, seed: int = 0) -> Dict[str, float]:
    """Blocking under full load: every processor requests, every port free.

    The address-mapping side reproduces the classic ~0.3 per-connection
    blocking of a random permutation on an 8x8 Omega; the distributed side
    shows the gain of searching instead of aiming.
    """
    rng = RandomStreams(seed).stream("permutation-blocking")
    address_blocked = 0.0
    rsin_blocked = 0.0
    for _ in range(trials):
        topology = make_topology(topology_kind, size)
        permutation = list(range(size))
        rng.shuffle(permutation)
        outcome = sequential_tag_routing(topology, list(enumerate(permutation)))
        address_blocked += len(outcome.blocked) / size
        scheduler = ClockedMultistageScheduler(topology, [1] * size)
        result = scheduler.run(list(range(size)))
        rsin_blocked += len(result.blocked) / size
    return {
        "address_mapping": address_blocked / trials,
        "rsin": rsin_blocked / trials,
    }


def average_blocking(points: Sequence[BlockingPoint]) -> Dict[str, float]:
    """Feasibility-weighted averages over a set of request sizes."""
    weight = sum(point.request_size * point.trials for point in points)
    if weight == 0:
        raise ConfigurationError("no blocking points to average")

    def fold(select) -> float:
        return sum(select(point) * point.request_size * point.trials
                   for point in points) / weight

    return {
        "rsin": fold(lambda point: point.rsin),
        "address_random": fold(lambda point: point.address_random),
        "address_sequential": fold(lambda point: point.address_sequential),
    }
