"""Optimal resource allocation in polynomial time (the paper's ref. [35]).

Section V notes that a centralized scheduler needs ``C(x, y) y!`` trials to
find the best processor-resource mapping by enumeration, and defers
"polynomial-time optimal scheduling algorithms" to a follow-up paper
(Juang & Wah).  For single-resource requests the problem has a clean
network-flow formulation, implemented here:

* every link of the multistage network is an arc of capacity 1 (circuit
  switching: one circuit per link);
* every 2x2 box is a node — two circuits through a box must use distinct
  input and output links, and any such pair is realizable as the straight
  or exchange setting, so arc-disjointness is exactly the hardware
  constraint;
* a super-source feeds the requesting processors, candidate output ports
  drain to a super-sink; **integral max-flow = the maximum number of
  simultaneously routable requests**, and the flow decomposition is the
  switch setting.

This supersedes the exhaustive :func:`max_conflict_free` (factorial) for
anything beyond toy sizes; the test suite checks the two agree exactly on
random small instances.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import networkx as nx

from repro.errors import ConfigurationError
from repro.networks.topology import MultistageTopology


def _link_node(column: int, index: int, side: str) -> Tuple[str, int, int]:
    """Graph node for one end of a link (links are split to cap them at 1)."""
    return (side, column, index)


def build_flow_network(topology: MultistageTopology, sources: Sequence[int],
                       ports: Sequence[int]) -> nx.DiGraph:
    """The unit-capacity layered graph of the network's links.

    Each link ``(column, index)`` becomes an internal arc ``in -> out`` of
    capacity 1; box wiring connects link-out nodes of column ``t`` to
    link-in nodes of column ``t + 1``.
    """
    graph = nx.DiGraph()
    size = topology.size
    for column in range(topology.stages + 1):
        for index in range(size):
            graph.add_edge(_link_node(column, index, "in"),
                           _link_node(column, index, "out"), capacity=1)
    for stage in range(topology.stages):
        for index in range(size):
            box, in_port = topology.input_map(stage, index)
            for out_port in (0, 1):
                out_index = topology.output_link(stage, box, out_port)
                graph.add_edge(_link_node(stage, index, "out"),
                               _link_node(stage + 1, out_index, "in"),
                               capacity=1)
    for source in sources:
        graph.add_edge("SOURCE", _link_node(0, source, "in"), capacity=1)
    for port in ports:
        graph.add_edge(_link_node(topology.stages, port, "out"), "SINK",
                       capacity=1)
    return graph


def optimal_allocation(topology: MultistageTopology, sources: Sequence[int],
                       ports: Sequence[int]) -> Tuple[int, Dict[int, int]]:
    """Maximum simultaneously routable requests, with one witness mapping.

    Polynomial (max-flow on a graph of O(N log N) arcs), versus the
    factorial enumeration of :func:`max_conflict_free`.  Returns
    ``(count, {source: port})``.
    """
    sources = list(dict.fromkeys(sources))
    ports = list(dict.fromkeys(ports))
    for source in sources:
        if not 0 <= source < topology.size:
            raise ConfigurationError(f"source {source} out of range")
    for port in ports:
        if not 0 <= port < topology.size:
            raise ConfigurationError(f"port {port} out of range")
    if not sources or not ports:
        return 0, {}
    graph = build_flow_network(topology, sources, ports)
    value, flow = nx.maximum_flow(graph, "SOURCE", "SINK")
    assignment: Dict[int, int] = {}
    for source in sources:
        entry = _link_node(0, source, "in")
        if flow["SOURCE"].get(entry, 0) < 1:
            continue
        assignment[source] = _trace_flow(topology, flow, source)
    return int(value), assignment


def _trace_flow(topology: MultistageTopology, flow, source: int) -> int:
    """Follow one unit of flow from ``source`` to its output port."""
    column, index = 0, source
    while column < topology.stages:
        out_node = _link_node(column, index, "out")
        for target, units in flow[out_node].items():
            if units >= 1:
                _side, next_column, next_index = target
                column, index = next_column, next_index
                break
        else:
            raise ConfigurationError("flow decomposition broke (bug)")
    return index


def allocation_shortfall(topology: MultistageTopology, sources: Sequence[int],
                         ports: Sequence[int]) -> int:
    """How many feasible requests the *network* (not the pool) loses.

    ``min(x, y) - maxflow``: zero means a non-blocking outcome exists for
    this instance; positive values are unavoidable topological blocking
    that no scheduler, centralized or distributed, can beat.
    """
    sources = list(dict.fromkeys(sources))
    ports = list(dict.fromkeys(ports))
    feasible = min(len(sources), len(ports))
    best, _assignment = optimal_allocation(topology, sources, ports)
    return feasible - best
