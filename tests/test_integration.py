"""Cross-module integration tests: the paper's claims end to end."""

import pytest

from repro import (
    RsinSystem,
    SystemConfig,
    Workload,
    simulate,
    solve_sbus,
    workload_at,
)


class TestSimulatorAgreesWithTheory:
    """The event simulator, the Markov chain, and classical queueing must
    tell one consistent story."""

    def test_partitioned_buses_match_chain_per_partition(self):
        workload = Workload(arrival_rate=0.015, transmission_rate=1.0,
                            service_rate=0.1)
        result = simulate("16/2x1x1 SBUS/16", workload,
                          horizon=120_000.0, warmup=10_000.0, seed=21)
        exact = solve_sbus(8 * 0.015, 1.0, 0.1, 16)
        assert result.mean_queueing_delay == pytest.approx(
            exact.mean_delay, rel=0.10)

    def test_crossbar_light_load_equals_private_view(self):
        """Section IV: at light load the crossbar looks to each processor
        like a private bus backed by the whole pool."""
        from repro.analysis import crossbar_light_load_delay
        workload = workload_at(0.4, 0.1)
        config = SystemConfig.parse("16/1x16x32 XBAR/1")
        simulated = simulate(config, workload, horizon=60_000.0,
                             warmup=6_000.0, seed=22)
        approx = crossbar_light_load_delay(config, workload)
        assert simulated.mean_queueing_delay == pytest.approx(
            approx.mean_delay, rel=0.3, abs=0.01)

    def test_omega_equals_crossbar_when_resources_bound(self):
        workload = workload_at(0.5, 0.1)
        omega = simulate("16/1x16x16 OMEGA/2", workload, horizon=30_000.0,
                         warmup=3_000.0, seed=23)
        crossbar = simulate("16/1x16x16 XBAR/2", workload, horizon=30_000.0,
                            warmup=3_000.0, seed=23)
        assert omega.mean_queueing_delay == pytest.approx(
            crossbar.mean_queueing_delay, rel=0.3, abs=0.005)

    def test_omega_blocking_costs_delay_when_network_bound(self):
        workload = workload_at(1.0, 4.0)
        omega = simulate("16/1x16x16 OMEGA/2", workload, horizon=20_000.0,
                         warmup=2_000.0, seed=24)
        crossbar = simulate("16/1x16x32 XBAR/1", workload, horizon=20_000.0,
                            warmup=2_000.0, seed=24)
        assert omega.network_blocking_fraction > 0.1
        assert omega.mean_queueing_delay > crossbar.mean_queueing_delay


class TestFairness:
    def test_priority_arbitration_is_unfair(self):
        """The asymmetric wavefront starves high-index processors under
        contention (Section IV); per-processor delays grow with the index."""
        config = SystemConfig.parse("8/1x1x1 SBUS/8")
        workload = Workload(arrival_rate=0.095, transmission_rate=1.0,
                            service_rate=1.0)
        system = RsinSystem(config, workload, seed=11, arbitration="priority")
        system.run(horizon=40_000.0, warmup=4_000.0)
        delays = [tally.mean for tally in system.processor_delays]
        assert delays[7] > 3.0 * delays[0]
        # Monotone growth (allow small sampling wiggle per adjacent pair).
        assert delays[0] < delays[3] < delays[7]

    def test_random_arbitration_is_fair(self):
        config = SystemConfig.parse("8/1x1x1 SBUS/8")
        workload = Workload(arrival_rate=0.095, transmission_rate=1.0,
                            service_rate=1.0)
        system = RsinSystem(config, workload, seed=11, arbitration="random")
        system.run(horizon=40_000.0, warmup=4_000.0)
        delays = [tally.mean for tally in system.processor_delays]
        assert max(delays) < 1.5 * min(delays)

    def test_mean_delay_is_policy_invariant(self):
        """Work conservation: the overall mean delay does not depend on
        which blocked processor is woken first."""
        config = SystemConfig.parse("8/1x1x1 SBUS/8")
        workload = Workload(arrival_rate=0.095, transmission_rate=1.0,
                            service_rate=1.0)
        means = []
        for policy in ("priority", "random", "fifo"):
            result = simulate(config, workload, horizon=40_000.0,
                              warmup=4_000.0, seed=11, arbitration=policy)
            means.append(result.mean_queueing_delay)
        assert max(means) == pytest.approx(min(means), rel=0.05)


class TestScenarioPipelines:
    def test_pumps_scenario_end_to_end(self):
        from repro.workload import pumps_scenario
        scenario = pumps_scenario(intensity=0.5)
        result = simulate(scenario.config, scenario.workload,
                          horizon=5_000.0, warmup=500.0, seed=2)
        assert result.completed_tasks > 100
        assert result.resource_utilization > 0.2

    def test_experiment_registry_round_trip(self):
        from repro.experiments import run_experiment
        outcome = run_experiment("sec2")
        assert outcome.data["optimal_allocatable"] == 3
