"""Tests for the advisory SQLite entry index (repro.runner.index).

The index's contract has two halves: aggregate operations (``stats``,
``prune``, ``verify --fast``, ``get_many``) are answered from SQLite
instead of directory walks, and yet the index holds zero authority — a
stale, deleted, or corrupted index may cost extra work but can never
change a served value or a reported total.  These tests pin both halves,
plus the rebuild path (``reindex``) that reconciles the two.
"""

import json
import os
import sqlite3

import pytest

from repro.cli import main
from repro.runner import (
    INDEX_FILENAME,
    CacheIndex,
    ResultCache,
    SweepRunner,
    WorkUnit,
)
from repro.runner.cache import ENVELOPE_VERSION, encode_entry

# Reuse the runner suite's module-level test evaluators ("test-square"):
# registering the same id twice is a ConfigurationError by design.
from tests.test_runner import _square  # noqa: F401


def _digest(index):
    return f"{index:02d}" + "a" * 62


class TestCacheIndexUnit:
    def test_record_and_query_round_trip(self, tmp_path):
        index = CacheIndex(tmp_path)
        index.record(_digest(1), 100, 5.0, ENVELOPE_VERSION, "test-square")
        index.record(_digest(2), 200, 3.0)
        assert index.summary() == (2, 300)
        assert index.rows() == [
            (_digest(1), 100, 5.0, ENVELOPE_VERSION, "test-square"),
            (_digest(2), 200, 3.0, 0, ""),
        ]
        # LRU order is mtime order, not insertion order.
        assert [d for d, _, _ in index.lru_entries()] == [
            _digest(2), _digest(1)]

    def test_contains_many_chunks_large_batches(self, tmp_path):
        index = CacheIndex(tmp_path)
        digests = [f"{i:04d}" + "b" * 60 for i in range(1500)]
        index.replace_all((d, 1, float(i), 1, "") for i, d in
                          enumerate(digests))
        # 1500 digests spans the 900-parameter chunk boundary.
        present = index.contains_many(digests + [_digest(99)])
        assert present == set(digests)

    def test_remove_many_is_transactional_and_chunked(self, tmp_path):
        index = CacheIndex(tmp_path)
        digests = [f"{i:04d}" + "c" * 60 for i in range(1000)]
        index.replace_all((d, 1, 0.0, 1, "") for d in digests)
        index.remove_many(digests[:950])
        assert index.summary()[0] == 50

    def test_schema_version_mismatch_discards_table(self, tmp_path):
        index = CacheIndex(tmp_path)
        index.record(_digest(1), 1, 1.0)
        index.close()
        connection = sqlite3.connect(index.path)
        connection.execute("PRAGMA user_version=999")
        connection.commit()
        connection.close()
        fresh = CacheIndex(tmp_path)
        assert fresh.summary() == (0, 0)  # old rows are gone, schema reset

    def test_garbage_database_file_is_discarded_and_rebuilt(self, tmp_path):
        (tmp_path / INDEX_FILENAME).write_bytes(b"this is not sqlite")
        index = CacheIndex(tmp_path)
        index.record(_digest(1), 10, 1.0)
        assert index.summary() == (1, 10)


class TestResultCacheIndexIntegration:
    def test_put_records_an_index_row(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_digest(1), {"v": 1}, evaluator_id="test-square")
        [(digest, size, mtime, version, evaluator)] = cache.index.rows()
        assert digest == _digest(1)
        path = tmp_path / digest[:2] / f"{digest}.pkl"
        assert size == path.stat().st_size and size > 0
        assert mtime == pytest.approx(path.stat().st_mtime)
        assert version == ENVELOPE_VERSION
        assert evaluator == "test-square"

    def test_stats_index_and_walk_agree(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.put(_digest(i), list(range(i)))
        indexed = cache.stats()
        walked = cache.stats(walk=True)
        assert (indexed.entries, indexed.total_bytes) == \
            (walked.entries, walked.total_bytes)
        assert indexed.entries == 5

    def test_index_deletion_recovers_byte_identical_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(4):
            cache.put(_digest(i), i * "x")
        reference = cache.stats(walk=True)
        cache.index.delete()
        assert not cache.index.exists()
        rebuilt = ResultCache(tmp_path).stats()
        assert (rebuilt.entries, rebuilt.total_bytes) == \
            (reference.entries, reference.total_bytes)

    def test_get_many_hits_misses_and_stale_rows(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_digest(1), "one")
        cache.put(_digest(2), "two")
        # Stale row: the index lists an entry whose file is gone.
        (tmp_path / _digest(2)[:2] / f"{_digest(2)}.pkl").unlink()
        values = cache.get_many([_digest(1), _digest(2), _digest(3),
                                 _digest(1)])
        assert values == {_digest(1): "one"}
        # The unindexed digest was a no-filesystem miss, the stale row a
        # safe (verified) miss — never a wrong value.
        assert cache.hits == 1 and cache.misses == 2

    def test_get_many_survives_a_corrupt_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_digest(1), "good")
        cache.put(_digest(2), "bad")
        (tmp_path / _digest(2)[:2] / f"{_digest(2)}.pkl").write_bytes(b"torn")
        values = cache.get_many([_digest(1), _digest(2)])
        assert values == {_digest(1): "good"}
        assert cache.corrupt == 1
        # The corrupt entry was quarantined and its index row dropped.
        assert [r[0] for r in cache.index.rows()] == [_digest(1)]

    def test_quarantine_on_get_drops_the_index_row(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_digest(1), 1)
        (tmp_path / _digest(1)[:2] / f"{_digest(1)}.pkl").write_bytes(b"x")
        assert cache.get(_digest(1)) == (False, None)
        assert cache.index.rows() == []
        assert cache.stats().entries == 0

    def test_prune_uses_indexed_lru_and_drops_rows(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(4):
            cache.put(_digest(i), "payload" * 10)
            # Separate the indexed mtimes deterministically.
            path = tmp_path / _digest(i)[:2] / f"{_digest(i)}.pkl"
            os.utime(path, (1000.0 + i, 1000.0 + i))
        cache.reindex()  # pick up the adjusted mtimes
        size = (tmp_path / _digest(0)[:2] /
                f"{_digest(0)}.pkl").stat().st_size
        removed, remaining = cache.prune(size * 2)
        assert removed == 2 and remaining == size * 2
        # Oldest two evicted, on disk and in the index alike.
        survivors = sorted(r[0] for r in cache.index.rows())
        assert survivors == [_digest(2), _digest(3)]
        assert cache.stats(walk=True).entries == 2

    def test_prune_walk_and_index_paths_agree(self, tmp_path):
        for walk in (False, True):
            root = tmp_path / f"walk-{walk}"
            cache = ResultCache(root)
            for i in range(6):
                cache.put(_digest(i), b"z" * 100)
            removed, remaining = cache.prune(0, walk=walk)
            assert removed == 6 and remaining == 0
            assert cache.stats(walk=True).entries == 0

    def test_reindex_reports_drift_and_converges(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_digest(1), "keep", evaluator_id="test-square")
        cache.put(_digest(2), "vanishes")
        # Drift 1: an entry written behind the index's back.
        foreign = tmp_path / _digest(3)[:2] / f"{_digest(3)}.pkl"
        foreign.parent.mkdir(parents=True, exist_ok=True)
        foreign.write_bytes(encode_entry(_digest(3), "foreign", "test-x"))
        # Drift 2: an indexed entry deleted behind the index's back.
        (tmp_path / _digest(2)[:2] / f"{_digest(2)}.pkl").unlink()
        report = cache.reindex()
        assert report.drifted
        assert (report.indexed, report.added, report.removed) == (2, 1, 1)
        rows = {r[0]: r for r in cache.index.rows()}
        assert set(rows) == {_digest(1), _digest(3)}
        # Evaluator provenance recovered from the envelopes themselves.
        assert rows[_digest(1)][4] == "test-square"
        assert rows[_digest(3)][4] == "test-x"
        assert not cache.reindex().drifted  # converged

    def test_reindex_counts_undecodable_but_indexes_them(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_digest(1), "fine")
        blob_path = tmp_path / _digest(2)[:2] / f"{_digest(2)}.pkl"
        blob_path.parent.mkdir(parents=True, exist_ok=True)
        blob_path.write_bytes(b"garbage bytes occupying space")
        report = cache.reindex()
        assert report.undecodable == 1
        assert report.indexed == 2
        # stats counts bytes on disk, decodable or not — identical to walk.
        assert cache.stats().total_bytes == cache.stats(walk=True).total_bytes
        assert "undecodable" in report.format()

    def test_verify_fast_flags_missing_and_truncated(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(_digest(i), "v" * 50)
        (tmp_path / _digest(0)[:2] / f"{_digest(0)}.pkl").unlink()
        (tmp_path / _digest(1)[:2] / f"{_digest(1)}.pkl").write_bytes(b"sh")
        report = cache.verify_fast()
        assert not report.clean
        assert report.missing == (_digest(0),)
        assert report.mismatched == (_digest(1),)
        assert report.ok == 1 and report.checked == 3
        assert "reindex" in report.format()
        clean = ResultCache(tmp_path)
        clean.reindex()
        # After reindex the fast audit only sees what exists (the
        # truncated entry matches its re-recorded size; full verify is
        # the integrity authority).
        assert clean.verify_fast().missing == ()

    def test_clear_empties_store_and_index(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(_digest(i), i)
        assert cache.clear() == 3
        assert cache.index.summary() == (0, 0)
        assert cache.stats().entries == 0

    def test_index_never_serves_a_value(self, tmp_path):
        # The acceptance property in one test: poison every index row's
        # metadata; reads are still checksum-verified from disk.
        cache = ResultCache(tmp_path)
        cache.put(_digest(1), {"real": True})
        cache.index.replace_all([(_digest(1), 1, 1.0, 9, "lies"),
                                 (_digest(9), 1, 1.0, 9, "ghost")])
        assert cache.get(_digest(1)) == (True, {"real": True})
        assert cache.get_many([_digest(1), _digest(9)]) == {
            _digest(1): {"real": True}}

    def test_quarantine_sibling_directories_are_scanned(self, tmp_path):
        # The path-component fix: a sibling directory sharing the
        # quarantine prefix ("_quarantine-old") holds real entries and
        # must NOT be excluded from walks.
        cache = ResultCache(tmp_path)
        cache.put(_digest(1), 1)
        sibling = tmp_path / "_quarantine-old"
        sibling.mkdir()
        stray = sibling / f"{_digest(2)}.pkl"
        stray.write_bytes(encode_entry(_digest(2), "stray"))
        walked = cache.stats(walk=True)
        assert walked.entries == 2  # sibling dir scanned
        # Real quarantine contents stay excluded.
        cache.quarantine_root.mkdir(parents=True, exist_ok=True)
        (cache.quarantine_root / "x.pkl").write_bytes(b"evidence")
        assert cache.stats(walk=True).entries == 2


class TestRunnerIndexIntegration:
    def test_sweep_startup_probe_uses_one_index_query(self, tmp_path):
        units = [WorkUnit("test-square", 0, {"x": x}) for x in range(5)]
        cache = ResultCache(tmp_path)
        SweepRunner(jobs=1, cache=cache).run(units)
        warm_cache = ResultCache(tmp_path)
        calls = []
        original = warm_cache.index.contains_many

        def spying(digests):
            calls.append(list(digests))
            return original(digests)

        warm_cache.index.contains_many = spying
        runner = SweepRunner(jobs=1, cache=warm_cache)
        runner.run(units)
        assert runner.last_report.cache_hits == 5
        assert len(calls) == 1 and len(calls[0]) == 5

    def test_runner_records_evaluator_provenance(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(jobs=1, cache=cache).run(
            [WorkUnit("test-square", 0, {"x": 3})])
        [(_, _, _, version, evaluator)] = cache.index.rows()
        assert version == ENVELOPE_VERSION
        assert evaluator == "test-square"


class TestCacheCliIndex:
    def _seed(self, root, count=3):
        cache = ResultCache(root)
        for i in range(count):
            cache.put(_digest(i), "x" * 20)
        return cache

    def test_stats_json_is_machine_readable(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main(["cache", "stats", "--json",
                     "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 3
        assert payload["total_bytes"] > 0
        assert payload["hit_rate"] is None
        assert set(payload) >= {"root", "entries", "total_bytes",
                                "session_hits", "session_misses",
                                "quarantined", "hit_rate"}

    def test_verify_fast_exit_codes(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main(["cache", "verify", "--fast",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "fast-verified 3" in capsys.readouterr().out
        (tmp_path / _digest(0)[:2] / f"{_digest(0)}.pkl").unlink()
        assert main(["cache", "verify", "--fast",
                     "--cache-dir", str(tmp_path)]) == 1
        assert "1 missing" in capsys.readouterr().out

    def test_reindex_reports_drift_then_consistency(self, tmp_path, capsys):
        self._seed(tmp_path)
        (tmp_path / INDEX_FILENAME).unlink()
        assert main(["cache", "reindex", "--cache-dir", str(tmp_path)]) == 0
        assert "3 added" in capsys.readouterr().out
        assert main(["cache", "reindex", "--cache-dir", str(tmp_path)]) == 0
        assert "already consistent" in capsys.readouterr().out
