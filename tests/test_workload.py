"""Tests for workload specifications and domain scenarios."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.workload import (
    DISTRIBUTIONS,
    Workload,
    dataflow_machine_scenario,
    load_balancing_scenario,
    pumps_scenario,
    sample_time,
)


class TestWorkload:
    def test_ratio(self):
        workload = Workload(0.1, 2.0, 0.5)
        assert workload.service_to_transmission_ratio == 0.25

    @pytest.mark.parametrize("field,value", [
        ("arrival_rate", 0.0),
        ("transmission_rate", -1.0),
        ("service_rate", 0.0),
    ])
    def test_non_positive_rates_rejected(self, field, value):
        kwargs = dict(arrival_rate=1.0, transmission_rate=1.0, service_rate=1.0)
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            Workload(**kwargs)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ConfigurationError):
            Workload(1.0, 1.0, 1.0, service_distribution="pareto")

    def test_deterministic_sampler(self):
        workload = Workload(1.0, 4.0, 1.0,
                            transmission_distribution="deterministic")
        rng = random.Random(0)
        assert workload.next_transmission(rng) == 0.25
        assert workload.next_transmission(rng) == 0.25

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_sampler_means(self, distribution):
        rng = random.Random(1)
        samples = [sample_time(rng, 2.0, distribution) for _ in range(40_000)]
        assert sum(samples) / len(samples) == pytest.approx(0.5, rel=0.05)

    def test_hyperexponential_is_more_variable(self):
        rng = random.Random(2)
        exponential = [sample_time(rng, 1.0, "exponential") for _ in range(40_000)]
        hyper = [sample_time(rng, 1.0, "hyperexponential") for _ in range(40_000)]

        def cv2(values):
            mean = sum(values) / len(values)
            variance = sum((v - mean) ** 2 for v in values) / len(values)
            return variance / mean ** 2

        assert cv2(hyper) > 2.0 * cv2(exponential)

    def test_bad_rate_in_sampler(self):
        with pytest.raises(ConfigurationError):
            sample_time(random.Random(0), 0.0, "exponential")

    @settings(max_examples=30, deadline=None)
    @given(rate=st.floats(0.01, 100.0))
    def test_samples_are_positive(self, rate):
        rng = random.Random(3)
        for distribution in DISTRIBUTIONS:
            assert sample_time(rng, rate, distribution) > 0


class TestScenarios:
    @pytest.mark.parametrize("factory", [
        pumps_scenario, load_balancing_scenario, dataflow_machine_scenario])
    def test_scenario_hits_requested_intensity(self, factory):
        scenario = factory(intensity=0.5)
        assert scenario.traffic_intensity == pytest.approx(0.5)
        assert scenario.name
        assert scenario.description

    def test_pumps_is_resource_bound(self):
        assert pumps_scenario().workload.service_to_transmission_ratio == 0.1

    def test_load_balancing_is_balanced(self):
        assert load_balancing_scenario().workload.service_to_transmission_ratio == 1.0

    def test_scenarios_are_runnable(self):
        from repro.core import simulate
        scenario = dataflow_machine_scenario(intensity=0.4)
        result = simulate(scenario.config, scenario.workload,
                          horizon=2_000.0, seed=1)
        assert result.completed_tasks > 0

    def test_custom_configuration(self):
        scenario = pumps_scenario(intensity=0.3,
                                  configuration="16/1x16x32 XBAR/1")
        assert scenario.config.network_type == "XBAR"
        assert scenario.traffic_intensity == pytest.approx(0.3)
