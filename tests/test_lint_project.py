"""Tests for the whole-program analyzer (repro.lint.project) and the
production engine around it: ProjectIndex, SIM006-SIM010, the incremental
cache, parallel runs, the baseline ratchet, and the SARIF emitter."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    ALL_RULES,
    LintSession,
    check_baseline,
    collect_suppressions,
    extract_module,
    fingerprint,
    format_json,
    format_sarif,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.lint.project import DERIVATION_CALLS as LINT_DERIVATION_CALLS
from repro.lint.project import ProjectIndex, module_name_for
from repro.sim.rng import DERIVATION_CALLS as RNG_DERIVATION_CALLS


def write_tree(root, files):
    """Materialize ``{relative_path: source}`` under ``root``."""
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def run_lint(root, **session_kwargs):
    session_kwargs.setdefault("use_cache", False)
    return LintSession(**session_kwargs).run([str(root)])


def codes(findings):
    return [finding.code for finding in findings]


def index_of(root, files):
    write_tree(root, files)
    modules = []
    for relative in files:
        path = root / relative
        source = path.read_text()
        per_line, file_codes = collect_suppressions(source)
        modules.append(extract_module(source, str(path), per_line,
                                      file_codes))
    return ProjectIndex(modules)


class TestModuleNames:
    def test_package_module_dotted(self, tmp_path):
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/mod.py": ""})
        assert module_name_for(tmp_path / "pkg" / "mod.py") == "pkg.mod"
        assert module_name_for(tmp_path / "pkg" / "__init__.py") == "pkg"

    def test_bare_file_is_its_stem(self, tmp_path):
        (tmp_path / "script.py").write_text("")
        assert module_name_for(tmp_path / "script.py") == "script"


class TestProjectIndex:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/helpers.py": """\
            _STATE = {}


            def bump():
                _STATE["count"] = _STATE.get("count", 0) + 1


            def pure(x):
                return x + 1
            """,
        "pkg/main.py": """\
            from pkg.helpers import bump

            import pkg.helpers


            def entry(pool, items):
                return [pool.submit(worker, item) for item in items]


            def worker(item):
                bump()
                return pkg.helpers.pure(item)
            """,
    }

    def test_import_graph_project_edges_only(self, tmp_path):
        index = index_of(tmp_path, self.FILES)
        graph = index.import_graph()
        assert graph["pkg.main"] == ["pkg.helpers"]
        assert graph["pkg.helpers"] == []

    def test_resolve_from_import_and_alias(self, tmp_path):
        index = index_of(tmp_path, self.FILES)
        main_info = index.by_module["pkg.main"]
        assert index.resolve_call(main_info, "bump") == [
            ("pkg.helpers", "bump")]
        assert ("pkg.helpers", "pure") in index.resolve_call(
            main_info, "pkg.helpers.pure")

    def test_worker_entry_points_include_pool_submission(self, tmp_path):
        index = index_of(tmp_path, self.FILES)
        assert ("pkg.main", "worker") in index.worker_entry_points()

    def test_reachable_from_crosses_modules(self, tmp_path):
        index = index_of(tmp_path, self.FILES)
        reached = index.reachable_from([("pkg.main", "worker")])
        assert ("pkg.helpers", "bump") in reached
        assert reached[("pkg.helpers", "bump")] == ("pkg.main", "worker")

    def test_mutable_globals_recorded(self, tmp_path):
        index = index_of(tmp_path, self.FILES)
        assert "_STATE" in index.by_module["pkg.helpers"].mutable_globals


class TestSim006StreamCollision:
    def test_cross_module_spawn_seed_collision(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """\
                from repro.sim.rng import spawn_seed


                def seed_a(master):
                    return spawn_seed(master, "fig3", "arrivals")
                """,
            "pkg/b.py": """\
                from repro.sim.rng import spawn_seed


                def seed_b(master):
                    return spawn_seed(master, "fig3", "arrivals")
                """,
        })
        findings = run_lint(tmp_path).findings
        assert codes(findings) == ["SIM006", "SIM006"]
        assert {Path(f.path).name for f in findings} == {"a.py", "b.py"}
        assert "pkg.b" in findings[0].message

    def test_dynamic_key_component_is_exempt(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": """\
                from repro.sim.rng import spawn_seed


                def seed_a(master, index):
                    return spawn_seed(master, "fig3", index)
                """,
            "pkg/b.py": """\
                from repro.sim.rng import spawn_seed


                def seed_b(master, index):
                    return spawn_seed(master, "fig3", index)
                """,
        })
        assert run_lint(tmp_path).findings == []

    def test_distinct_keys_clean(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("from repro.sim.rng import spawn_seed\n\n\n"
                         "def f(s):\n    return spawn_seed(s, 'left')\n"),
            "pkg/b.py": ("from repro.sim.rng import spawn_seed\n\n\n"
                         "def f(s):\n    return spawn_seed(s, 'right')\n"),
        })
        assert run_lint(tmp_path).findings == []

    def test_injected_collision_in_real_module_caught(self, tmp_path):
        """The issue's seeded injection: make blocking.py derive the same
        chained stream twice and SIM006 must fire on both sites."""
        original = Path("src/repro/analysis/blocking.py").read_text()
        tainted = original.replace('"permutation-blocking"',
                                   '"blocking-comparison"')
        assert tainted != original
        write_tree(tmp_path, {"analysis/blocking.py": ""})
        (tmp_path / "analysis" / "blocking.py").write_text(tainted)
        findings = run_lint(tmp_path).findings
        assert codes(findings) == ["SIM006", "SIM006"]
        assert all("blocking-comparison" in f.message for f in findings)


class TestSim007DigestDrift:
    def test_undeclared_params_read_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/evals.py": """\
                from repro.runner.evaluators import evaluator


                @evaluator("drifted", reads=("alpha",))
                def drifted(seed, params, backend="dense"):
                    return params["alpha"] + params["beta"]
                """,
        })
        findings = run_lint(tmp_path).findings
        assert codes(findings) == ["SIM007"]
        assert "params['beta']" in findings[0].message

    def test_declared_reads_clean(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/evals.py": """\
                from repro.runner.evaluators import evaluator


                @evaluator("honest", reads=("alpha", "beta"))
                def honest(seed, params, backend="dense"):
                    return params["alpha"] * params.get("beta", 1.0)
                """,
        })
        assert run_lint(tmp_path).findings == []

    def test_aliased_decorator_still_recognized(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/evals.py": """\
                from repro.runner.evaluators import evaluator as register


                @register("aliased", reads=())
                def aliased(seed, params, backend="dense"):
                    return params["gamma"]
                """,
        })
        assert codes(run_lint(tmp_path).findings) == ["SIM007"]

    def test_environ_read_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/evals.py": """\
                import os

                from repro.runner.evaluators import evaluator


                @evaluator("envy", reads=("alpha",))
                def envy(seed, params, backend="dense"):
                    return params["alpha"] * float(os.environ["SCALE"])
                """,
        })
        findings = run_lint(tmp_path).findings
        assert "SIM007" in codes(findings)
        assert any("environment" in f.message for f in findings)

    def test_dynamic_key_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/evals.py": """\
                from repro.runner.evaluators import evaluator


                @evaluator("dynamic", reads=("alpha",))
                def dynamic(seed, params, backend="dense"):
                    key = "alpha"
                    return params[key]
                """,
        })
        findings = run_lint(tmp_path).findings
        assert codes(findings) == ["SIM007"]
        assert "computed at runtime" in findings[0].message

    def test_injected_drift_in_real_registry_caught(self, tmp_path):
        """The issue's seeded injection: drop one declared key from the
        real sweep-point registration and SIM007 must fire."""
        original = Path("src/repro/runner/evaluators.py").read_text()
        tainted = original.replace('"intensity",\n', "", 1)
        assert tainted != original
        write_tree(tmp_path, {"runner/__init__.py": ""})
        (tmp_path / "runner" / "evaluators.py").write_text(tainted)
        findings = run_lint(tmp_path).findings
        assert any(f.code == "SIM007" and "intensity" in f.message
                   for f in findings)


class TestSim008WorkerImpurity:
    def test_global_write_traced_across_modules(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/state.py": """\
                _COUNTS = {}


                def bump(name):
                    _COUNTS[name] = _COUNTS.get(name, 0) + 1
                """,
            "pkg/evals.py": """\
                from pkg.state import bump

                from repro.runner.evaluators import evaluator


                @evaluator("impure", reads=("alpha",))
                def impure(seed, params, backend="dense"):
                    bump("impure")
                    return params["alpha"]
                """,
        })
        findings = run_lint(tmp_path).findings
        assert codes(findings) == ["SIM008"]
        assert "_COUNTS" in findings[0].message
        assert "pkg.evals" in findings[0].message

    def test_write_outside_worker_path_clean(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/state.py": """\
                _COUNTS = {}


                def bump(name):
                    _COUNTS[name] = _COUNTS.get(name, 0) + 1
                """,
        })
        assert run_lint(tmp_path).findings == []

    def test_local_mutation_in_worker_clean(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/evals.py": """\
                from repro.runner.evaluators import evaluator


                @evaluator("pure", reads=("alpha",))
                def pure(seed, params, backend="dense"):
                    acc = {}
                    acc["value"] = params["alpha"]
                    return acc
                """,
        })
        assert run_lint(tmp_path).findings == []


class TestSim009UnorderedReduction:
    def test_set_iteration_into_accumulation_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "sim/hot.py": """\
                def total(first, second):
                    pending = {first, second}
                    acc = 0.0
                    for value in pending:
                        acc += value
                    return acc
                """,
        })
        findings = run_lint(tmp_path).findings
        assert codes(findings) == ["SIM009"]
        assert "sorted" in findings[0].message

    def test_sorted_iteration_clean(self, tmp_path):
        write_tree(tmp_path, {
            "sim/hot.py": """\
                def total(first, second):
                    pending = {first, second}
                    acc = 0.0
                    for value in sorted(pending):
                        acc += value
                    return acc
                """,
        })
        assert run_lint(tmp_path).findings == []

    def test_outside_hot_paths_not_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "analysis/cold.py": """\
                def total(first, second):
                    pending = {first, second}
                    acc = 0.0
                    for value in pending:
                        acc += value
                    return acc
                """,
        })
        assert run_lint(tmp_path).findings == []


class TestSim010NonAtomicWrite:
    def test_bare_write_open_in_runner_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "runner/store.py": """\
                def save(path, data):
                    with open(path, "w") as handle:
                        handle.write(data)
                """,
        })
        findings = run_lint(tmp_path).findings
        assert codes(findings) == ["SIM010"]
        assert "os.replace" in findings[0].message

    def test_atomic_replace_pattern_clean(self, tmp_path):
        write_tree(tmp_path, {
            "runner/store.py": """\
                import os


                def save(path, data):
                    temporary = path + ".tmp"
                    with open(temporary, "w") as handle:
                        handle.write(data)
                    os.replace(temporary, path)
                """,
        })
        assert run_lint(tmp_path).findings == []

    def test_outside_persistence_layers_not_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "analysis/export.py": """\
                def save(path, data):
                    with open(path, "w") as handle:
                        handle.write(data)
                """,
        })
        assert run_lint(tmp_path).findings == []


class TestSuppressionOfProjectFindings:
    def test_inline_pragma_silences_one_site(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": (
                "from repro.sim.rng import spawn_seed\n\n\n"
                "def f(s):\n"
                "    return spawn_seed(s, 'dup')  # lint: disable=SIM006\n"),
            "pkg/b.py": (
                "from repro.sim.rng import spawn_seed\n\n\n"
                "def f(s):\n    return spawn_seed(s, 'dup')\n"),
        })
        findings = run_lint(tmp_path).findings
        assert codes(findings) == ["SIM006"]
        assert Path(findings[0].path).name == "b.py"

    def test_file_level_disable_silences_module(self, tmp_path):
        write_tree(tmp_path, {
            "runner/store.py": """\
                # lint: disable-file=SIM010
                def save(path, data):
                    with open(path, "w") as handle:
                        handle.write(data)
                """,
        })
        assert run_lint(tmp_path).findings == []


class TestIncrementalCache:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/a.py": ("from repro.sim.rng import spawn_seed\n\n\n"
                     "def f(s):\n    return spawn_seed(s, 'dup')\n"),
        "pkg/b.py": ("from repro.sim.rng import spawn_seed\n\n\n"
                     "def f(s):\n    return spawn_seed(s, 'dup')\n"),
    }

    def test_second_run_hits_cache_for_every_file(self, tmp_path):
        root = write_tree(tmp_path / "tree", self.FILES)
        cache = tmp_path / "cache" / "findings.json"
        first = run_lint(root, cache_path=cache, use_cache=True)
        assert first.stats.cache_hits == 0
        assert first.stats.analyzed == first.stats.files == 3
        second = run_lint(root, cache_path=cache, use_cache=True)
        assert second.stats.cache_hits == second.stats.files == 3
        assert second.stats.analyzed == 0
        assert second.stats.project_cached
        assert format_json(second.findings) == format_json(first.findings)

    def test_edited_file_misses_cache_alone(self, tmp_path):
        root = write_tree(tmp_path / "tree", self.FILES)
        cache = tmp_path / "cache" / "findings.json"
        run_lint(root, cache_path=cache, use_cache=True)
        (root / "pkg" / "b.py").write_text(
            "from repro.sim.rng import spawn_seed\n\n\n"
            "def f(s):\n    return spawn_seed(s, 'other')\n")
        result = run_lint(root, cache_path=cache, use_cache=True)
        assert result.stats.analyzed == 1
        assert result.stats.cache_hits == 2
        assert not result.stats.project_cached
        assert result.findings == []

    def test_corrupt_cache_degrades_to_full_run(self, tmp_path):
        root = write_tree(tmp_path / "tree", self.FILES)
        cache = tmp_path / "cache" / "findings.json"
        cache.parent.mkdir(parents=True)
        cache.write_text("{not json")
        result = run_lint(root, cache_path=cache, use_cache=True)
        assert result.stats.analyzed == 3
        assert codes(result.findings) == ["SIM006", "SIM006"]


class TestParallelRuns:
    def test_jobs_2_output_byte_identical_to_serial(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("from repro.sim.rng import spawn_seed\n\n\n"
                         "def f(s):\n    return spawn_seed(s, 'dup')\n"),
            "pkg/b.py": ("from repro.sim.rng import spawn_seed\n\n\n"
                         "def f(s):\n    return spawn_seed(s, 'dup')\n"),
            "sim/hot.py": ("def total(a, b):\n"
                           "    pending = {a, b}\n"
                           "    acc = 0.0\n"
                           "    for value in pending:\n"
                           "        acc += value\n"
                           "    return acc\n"),
        })
        serial = run_lint(root, jobs=1)
        parallel = run_lint(root, jobs=2)
        assert parallel.stats.jobs == 2
        assert format_json(parallel.findings) == format_json(serial.findings)
        assert codes(serial.findings) == ["SIM006", "SIM006", "SIM009"]


class TestBaselineRatchet:
    def _finding_tree(self, tmp_path):
        return write_tree(tmp_path / "tree", {
            "pkg/__init__.py": "",
            "pkg/a.py": ("from repro.sim.rng import spawn_seed\n\n\n"
                         "def f(s):\n    return spawn_seed(s, 'dup')\n"),
            "pkg/b.py": ("from repro.sim.rng import spawn_seed\n\n\n"
                         "def f(s):\n    return spawn_seed(s, 'dup')\n"),
        })

    def test_baselined_findings_tolerated_new_ones_fail(self, tmp_path):
        root = self._finding_tree(tmp_path)
        findings = run_lint(root).findings
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        check = check_baseline(findings, load_baseline(baseline_path))
        assert check.clean
        assert check.matched == 2
        (root / "pkg" / "c.py").write_text(
            "from repro.sim.rng import spawn_seed\n\n\n"
            "def f(s):\n    return spawn_seed(s, 'dup')\n")
        grown = run_lint(root).findings
        check = check_baseline(grown, load_baseline(baseline_path))
        assert not check.clean
        assert any(Path(f.path).name == "c.py" for f in check.new_findings)

    def test_resolved_entries_reported(self, tmp_path):
        root = self._finding_tree(tmp_path)
        findings = run_lint(root).findings
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        (root / "pkg" / "b.py").write_text("def clean():\n    return 1\n")
        check = check_baseline(run_lint(root).findings,
                               load_baseline(baseline_path))
        assert check.clean
        assert check.resolved  # the fixed debt shows up for ratcheting down

    def test_fingerprint_ignores_line_numbers(self):
        from repro.lint import Finding

        one = Finding(path="a.py", line=3, column=1, code="SIM006",
                      message="collides")
        moved = Finding(path="a.py", line=9, column=5, code="SIM006",
                        message="collides")
        assert fingerprint(one) == fingerprint(moved)

    def test_bad_baseline_raises_value_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("[]")
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestSarif:
    def test_sarif_structure_and_rule_index(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("from repro.sim.rng import spawn_seed\n\n\n"
                         "def f(s):\n    return spawn_seed(s, 'dup')\n"),
            "pkg/b.py": ("from repro.sim.rng import spawn_seed\n\n\n"
                         "def f(s):\n    return spawn_seed(s, 'dup')\n"),
        })
        findings = run_lint(root).findings
        payload = json.loads(format_sarif(findings, rules=ALL_RULES))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert set(rule_ids) >= {f"SIM{n:03d}" for n in range(1, 11)}
        result = run["results"][0]
        assert result["ruleId"] == "SIM006"
        assert rule_ids[result["ruleIndex"]] == "SIM006"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("a.py")
        assert location["region"]["startLine"] == 5

    def test_sarif_output_is_stable(self, tmp_path):
        root = write_tree(tmp_path, {"pkg/a.py": "x = 1\n"})
        first = format_sarif(run_lint(root).findings, rules=ALL_RULES)
        second = format_sarif(run_lint(root).findings, rules=ALL_RULES)
        assert first == second


class TestVocabularySync:
    def test_lint_and_rng_derivation_calls_agree(self):
        """SIM006 indexes literals at exactly the runtime's derivation
        call names; the two vocabularies must never drift apart."""
        assert LINT_DERIVATION_CALLS == RNG_DERIVATION_CALLS

    def test_digest_material_matches_declared_contract(self):
        from repro.runner.workunit import DIGEST_MATERIAL

        assert DIGEST_MATERIAL == ("code_version", "evaluator_id", "seed",
                                   "backend", "params")

    def test_every_production_evaluator_declares_reads(self):
        import repro.runner.evaluators as evaluators

        for evaluator_id, function in evaluators.EVALUATORS.items():
            if function.__module__ != "repro.runner.evaluators":
                continue  # test suites register throwaway evaluators freely
            assert evaluators.EVALUATOR_READS[evaluator_id] is not None, (
                f"evaluator {evaluator_id!r} must declare reads=(...) so "
                "SIM007 can audit its digest material")


class TestRepoMetaLint:
    def test_whole_repo_is_baseline_clean_under_all_rules(self):
        """The issue's CI meta-test: the tree linted with SIM001-SIM010
        has no findings beyond the committed baseline."""
        result = LintSession(use_cache=False).run(["src"])
        baseline = load_baseline(".lint-baseline.json")
        check = check_baseline(result.findings, baseline)
        assert check.clean, [f.format() for f in check.new_findings]

    def test_catalogue_is_complete(self):
        assert sorted(rule.code for rule in ALL_RULES) == [
            f"SIM{n:03d}" for n in range(1, 11)]
        assert all(rule.summary for rule in ALL_RULES)


class TestCliIntegration:
    def _dirty_tree(self, tmp_path):
        return write_tree(tmp_path / "tree", {
            "pkg/__init__.py": "",
            "pkg/a.py": ("from repro.sim.rng import spawn_seed\n\n\n"
                         "def f(s):\n    return spawn_seed(s, 'dup')\n"),
            "pkg/b.py": ("from repro.sim.rng import spawn_seed\n\n\n"
                         "def f(s):\n    return spawn_seed(s, 'dup')\n"),
        })

    def test_sarif_format_round_trips(self, tmp_path, capsys):
        root = self._dirty_tree(tmp_path)
        assert main(["lint", str(root), "--no-cache",
                     "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"][0]["ruleId"] == "SIM006"

    def test_stats_go_to_stderr_not_stdout(self, tmp_path, capsys):
        root = self._dirty_tree(tmp_path)
        assert main(["lint", str(root), "--no-cache", "--stats",
                     "--format", "json"]) == 1
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout stays machine-parseable
        assert "cache hits" in captured.err

    def test_baseline_write_then_check_workflow(self, tmp_path, capsys):
        root = self._dirty_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(root), "--no-cache", "--baseline", "write",
                     "--baseline-file", str(baseline)]) == 0
        assert main(["lint", str(root), "--no-cache", "--baseline", "check",
                     "--baseline-file", str(baseline)]) == 0
        assert "baseline-clean" in capsys.readouterr().out
        (root / "pkg" / "c.py").write_text(
            "from repro.sim.rng import spawn_seed\n\n\n"
            "def f(s):\n    return spawn_seed(s, 'dup')\n")
        assert main(["lint", str(root), "--no-cache", "--baseline", "check",
                     "--baseline-file", str(baseline)]) == 1
        assert "new finding(s)" in capsys.readouterr().out

    def test_jobs_flag_accepted(self, tmp_path, capsys):
        root = self._dirty_tree(tmp_path)
        assert main(["lint", str(root), "--no-cache", "--jobs", "2",
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2

    def test_cache_dir_flag_isolates_cache(self, tmp_path, capsys):
        root = self._dirty_tree(tmp_path)
        cache_dir = tmp_path / "lintcache"
        assert main(["lint", str(root), "--cache-dir", str(cache_dir)]) == 1
        assert (cache_dir / "findings.json").exists()
        capsys.readouterr()

    def test_list_rules_covers_whole_catalogue(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for number in range(1, 11):
            assert f"SIM{number:03d}" in out


class TestSatelliteRegressions:
    def test_sim002_dotted_datetime_flagged(self):
        source = ("import datetime\n\n\n"
                  "def f():\n    return datetime.datetime.now()\n")
        findings = lint_source(source, "src/repro/sim/clockuse.py")
        assert codes(findings) == ["SIM002"]

    def test_sim002_unrelated_dotted_tail_clean(self):
        source = ("def f(self):\n    return self.clock.time()\n")
        assert lint_source(source, "src/repro/sim/clockuse.py") == []

    def test_overlapping_targets_lint_each_file_once(self, tmp_path):
        write_tree(tmp_path, {"pkg/dirty.py": "import random\n"})
        once = lint_paths([str(tmp_path)])
        twice = lint_paths([str(tmp_path), str(tmp_path / "pkg"),
                            str(tmp_path / "pkg" / "dirty.py")])
        assert codes(once) == codes(twice) == ["SIM001"]

    def test_file_level_disable_in_first_comment_block(self):
        source = ("# generated file\n"
                  "# lint: disable-file=SIM001\n"
                  "import random\n")
        assert lint_source(source, "pkg/module.py") == []

    def test_disable_file_after_code_is_not_honored(self):
        source = ("import random\n"
                  "# lint: disable-file=SIM001\n")
        assert codes(lint_source(source, "pkg/module.py")) == ["SIM001"]

    def test_disable_file_all_swallows_syntax_errors(self):
        source = ("# lint: disable-file=ALL\n"
                  "def broken(:\n")
        assert lint_source(source, "pkg/module.py") == []
