"""Tests for the Section V blocking-probability experiments (E11)."""

import pytest

from repro.analysis import (
    average_blocking,
    blocking_comparison,
    full_permutation_blocking,
)
from repro.errors import ConfigurationError


class TestBlockingComparison:
    @pytest.fixture(scope="class")
    def points(self):
        return blocking_comparison(size=8, request_sizes=(4, 6),
                                   trials=120, seed=3, include_optimal=True,
                                   optimal_limit=4)

    def test_probabilities_in_unit_interval(self, points):
        for point in points:
            for value in (point.rsin, point.address_random,
                          point.address_sequential):
                assert 0.0 <= value <= 1.0

    def test_rsin_blocks_less_than_address_mapping(self, points):
        """The paper's core claim: distributed search roughly halves the
        blocking probability of address mapping."""
        for point in points:
            assert point.rsin < point.address_random
            assert point.rsin <= 0.75 * point.address_random

    def test_optimal_is_a_floor(self, points):
        for point in points:
            if point.optimal is not None:
                assert point.optimal <= point.rsin + 1e-12

    def test_optimal_skipped_above_limit(self, points):
        by_size = {p.request_size: p for p in points}
        assert by_size[4].optimal is not None
        assert by_size[6].optimal is None

    def test_blocking_grows_with_request_size_for_address_mapping(self):
        points = blocking_comparison(size=8, request_sizes=(2, 5, 8),
                                     trials=150, seed=1)
        values = [p.address_random for p in points]
        assert values[0] < values[-1]

    def test_invalid_request_size_rejected(self):
        with pytest.raises(ConfigurationError):
            blocking_comparison(size=8, request_sizes=(9,), trials=1)

    def test_average_blocking(self, points):
        averages = average_blocking(points)
        assert set(averages) == {"rsin", "address_random", "address_sequential"}
        assert averages["rsin"] < averages["address_random"]

    def test_average_of_nothing_rejected(self):
        with pytest.raises(ConfigurationError):
            average_blocking([])


class TestFullPermutation:
    def test_address_mapping_near_point_three(self):
        """Franklin's ~0.3 for a random permutation on an 8x8 Omega."""
        result = full_permutation_blocking(size=8, trials=400, seed=2)
        assert result["address_mapping"] == pytest.approx(0.30, abs=0.04)

    def test_rsin_resolves_full_permutations(self):
        """With every port free the distributed search re-routes around
        all conflicts: blocking vanishes."""
        result = full_permutation_blocking(size=8, trials=100, seed=2)
        assert result["rsin"] <= 0.02
