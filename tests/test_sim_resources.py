"""Tests for the kernel's shared-resource primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment
from repro.sim.resources import SimResource, SimStore


class TestSimResource:
    def test_grants_up_to_capacity_immediately(self):
        env = Environment()
        resource = SimResource(env, capacity=2)
        first, second = resource.request(), resource.request()
        env.run()
        assert first.processed and second.processed
        assert resource.available == 0

    def test_excess_requests_queue_fifo(self):
        env = Environment()
        resource = SimResource(env, capacity=1)
        resource.request()
        waiter_a = resource.request()
        waiter_b = resource.request()
        env.run()
        assert not waiter_a.triggered and not waiter_b.triggered
        assert resource.queue_length == 2
        resource.release()
        env.run()
        assert waiter_a.processed
        assert not waiter_b.triggered  # strictly FIFO

    def test_release_without_request_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            SimResource(env).release()

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            SimResource(Environment(), capacity=0)

    def test_process_integration_mm1_behaviour(self):
        """An M/M/1-ish queue built only from kernel primitives matches
        the closed form — the resource primitive is a valid server."""
        import random
        from repro.queueing import mm1_metrics
        env = Environment()
        resource = SimResource(env, capacity=1)
        rng = random.Random(5)
        waits = []

        def customer():
            arrived = env.now
            yield resource.request()
            waits.append(env.now - arrived)
            yield env.timeout(rng.expovariate(1.0))
            resource.release()

        def source():
            while True:
                yield env.timeout(rng.expovariate(0.6))
                env.process(customer())

        env.process(source())
        env.run(until=60_000.0)
        measured = sum(waits) / len(waits)
        expected = mm1_metrics(0.6, 1.0).mean_waiting_time
        assert measured == pytest.approx(expected, rel=0.08)


class TestSimStore:
    def test_put_then_get(self):
        env = Environment()
        store = SimStore(env)
        store.put("a")
        store.put("b")
        got = store.get()
        env.run()
        assert got.value == "a"
        assert len(store) == 1

    def test_get_blocks_until_put(self):
        env = Environment()
        store = SimStore(env)
        got = store.get()
        env.run()
        assert not got.triggered
        store.put("late")
        env.run()
        assert got.value == "late"

    def test_getters_served_fifo(self):
        env = Environment()
        store = SimStore(env)
        first, second = store.get(), store.get()
        store.put(1)
        store.put(2)
        env.run()
        assert first.value == 1
        assert second.value == 2

    def test_bounded_put_blocks_when_full(self):
        env = Environment()
        store = SimStore(env, capacity=1)
        ok = store.put("x")
        blocked = store.put("y")
        env.run()
        assert ok.processed
        assert not blocked.triggered
        taken = store.get()
        env.run()
        assert taken.value == "x"
        assert blocked.processed
        assert len(store) == 1  # "y" moved in when space freed

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            SimStore(Environment(), capacity=0)

    def test_producer_consumer_pipeline(self):
        env = Environment()
        store = SimStore(env, capacity=2)
        consumed = []

        def producer():
            for index in range(6):
                yield store.put(index)
                yield env.timeout(0.1)

        def consumer():
            for _ in range(6):
                item = yield store.get()
                consumed.append(item)
                yield env.timeout(0.5)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert consumed == list(range(6))
