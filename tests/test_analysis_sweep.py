"""Tests for the sweep machinery behind the delay figures."""

import pytest

from repro.analysis import (
    Series,
    SweepPoint,
    analytic_series,
    crossover_intensity,
    series_for,
    simulated_series,
    workload_at,
)
from repro.config import SystemConfig


class TestWorkloadAt:
    def test_hits_requested_intensity(self):
        workload = workload_at(0.75, 0.1)
        rho = 16 * workload.arrival_rate * (
            1.0 / (16 * workload.transmission_rate)
            + 1.0 / (32 * workload.service_rate))
        assert rho == pytest.approx(0.75)

    def test_ratio_respected(self):
        workload = workload_at(0.5, 0.25)
        assert workload.service_to_transmission_ratio == pytest.approx(0.25)


class TestAnalyticSeries:
    def test_marks_saturated_points(self):
        # One shared bus saturates at rho = 0.375 for ratio 0.1.
        series = analytic_series("16/1x1x1 SBUS/32", 0.1,
                                 [0.2, 0.3, 0.5, 0.8])
        by_x = {p.intensity: p for p in series.points}
        assert by_x[0.2].normalized_delay is not None
        assert by_x[0.5].normalized_delay is None
        assert by_x[0.8].normalized_delay is None

    def test_monotone_in_load(self):
        series = analytic_series("16/16x1x1 SBUS/2", 0.1, [0.2, 0.4, 0.6])
        delays = [p.normalized_delay for p in series.points]
        assert delays == sorted(delays)

    def test_finite_points_helper(self):
        series = analytic_series("16/1x1x1 SBUS/32", 0.1, [0.2, 0.8])
        assert len(series.finite_points()) == 1

    def test_label_defaults_to_config(self):
        series = analytic_series("16/16x1x1 SBUS/2", 0.1, [0.2])
        assert series.label == "16/16x1x1 SBUS/2"
        assert series.method == "markov-chain"


class TestSimulatedSeries:
    def test_produces_delays_with_ci(self):
        series = simulated_series("16/1x16x16 XBAR/2", 0.1, [0.3, 0.5],
                                  horizon=4_000.0, seed=2)
        for point in series.finite_points():
            assert point.normalized_delay >= 0.0
            assert point.ci_halfwidth is not None

    def test_saturation_guard_skips_hopeless_points(self):
        series = simulated_series("16/1x16x16 XBAR/2", 0.1, [0.5, 1.5],
                                  horizon=2_000.0)
        by_x = {p.intensity: p for p in series.points}
        assert by_x[1.5].normalized_delay is None

    def test_dispatch_by_network_type(self):
        bus = series_for("16/16x1x1 SBUS/2", 0.1, [0.3])
        assert bus.method == "markov-chain"
        switched = series_for("16/1x16x16 XBAR/2", 0.1, [0.3],
                              horizon=2_000.0)
        assert switched.method == "event-simulation"


class TestCrossover:
    def make_series(self, values, label):
        config = SystemConfig.parse("16/16x1x1 SBUS/2")
        points = tuple(SweepPoint(intensity=x, normalized_delay=y)
                       for x, y in values)
        return Series(label=label, config=config, mu_ratio=0.1,
                      points=points, method="markov-chain")

    def test_detects_crossing(self):
        first = self.make_series([(0.2, 1.0), (0.4, 2.0), (0.6, 4.0)], "a")
        second = self.make_series([(0.2, 2.0), (0.4, 2.0), (0.6, 3.0)], "b")
        crossing = crossover_intensity(first, second)
        assert crossing is not None
        assert 0.2 < crossing <= 0.6

    def test_none_when_ordered(self):
        first = self.make_series([(0.2, 1.0), (0.4, 2.0)], "a")
        second = self.make_series([(0.2, 2.0), (0.4, 3.0)], "b")
        assert crossover_intensity(first, second) is None

    def test_ignores_saturated_points(self):
        first = self.make_series([(0.2, 1.0), (0.4, None)], "a")
        second = self.make_series([(0.2, 2.0), (0.4, 1.0)], "b")
        assert crossover_intensity(first, second) is None
