"""Unit tests for the statistics collectors."""

import math

import numpy as np
import pytest

from repro.sim import BatchMeans, TallyStat, TimeWeightedStat, confidence_interval


class TestTallyStat:
    def test_empty_is_nan(self):
        stat = TallyStat()
        assert math.isnan(stat.mean)
        assert math.isnan(stat.variance)

    def test_matches_numpy(self):
        values = [3.0, 1.5, -2.0, 7.25, 0.0, 4.5]
        stat = TallyStat()
        for value in values:
            stat.record(value)
        assert stat.count == len(values)
        assert stat.mean == pytest.approx(np.mean(values))
        assert stat.variance == pytest.approx(np.var(values, ddof=1))
        assert stat.stdev == pytest.approx(np.std(values, ddof=1))
        assert stat.minimum == min(values)
        assert stat.maximum == max(values)

    def test_single_observation(self):
        stat = TallyStat()
        stat.record(5.0)
        assert stat.mean == 5.0
        assert math.isnan(stat.variance)

    def test_reset(self):
        stat = TallyStat()
        stat.record(1.0)
        stat.reset()
        assert stat.count == 0
        assert math.isnan(stat.mean)


class TestTimeWeightedStat:
    def test_constant_signal(self):
        stat = TimeWeightedStat(initial_value=3.0)
        assert stat.time_average(10.0) == pytest.approx(3.0)

    def test_step_signal(self):
        stat = TimeWeightedStat(initial_value=0.0)
        stat.update(2.0, now=5.0)   # 0 for 5 units, then 2
        assert stat.time_average(10.0) == pytest.approx(1.0)

    def test_add_increments(self):
        stat = TimeWeightedStat()
        stat.add(3.0, now=1.0)
        stat.add(-1.0, now=2.0)
        assert stat.value == 2.0
        # area: 0*1 + 3*1 + 2*2 = 7 over 4 units
        assert stat.time_average(4.0) == pytest.approx(7.0 / 4.0)

    def test_time_going_backwards_rejected(self):
        stat = TimeWeightedStat()
        stat.update(1.0, now=5.0)
        with pytest.raises(ValueError):
            stat.update(2.0, now=4.0)

    def test_zero_window_is_nan(self):
        assert math.isnan(TimeWeightedStat().time_average(0.0))

    def test_reset_keeps_value(self):
        stat = TimeWeightedStat()
        stat.update(4.0, now=2.0)
        stat.reset(now=2.0)
        assert stat.value == 4.0
        assert stat.time_average(4.0) == pytest.approx(4.0)

    def test_maximum_tracked(self):
        stat = TimeWeightedStat()
        stat.update(5.0, now=1.0)
        stat.update(2.0, now=2.0)
        assert stat.maximum == 5.0


class TestBatchMeans:
    def test_requires_two_batches(self):
        with pytest.raises(ValueError):
            BatchMeans(num_batches=1)

    def test_batch_means_partition(self):
        batches = BatchMeans(num_batches=2)
        for value in [1.0, 2.0, 3.0, 4.0]:
            batches.record(value)
        assert batches.batch_means() == [1.5, 3.5]

    def test_front_remainder_dropped(self):
        batches = BatchMeans(num_batches=2)
        for value in [99.0, 1.0, 2.0, 3.0, 4.0]:
            batches.record(value)
        assert batches.batch_means() == [1.5, 3.5]

    def test_interval_shrinks_with_data(self):
        rng = np.random.default_rng(0)
        small = BatchMeans(num_batches=10)
        large = BatchMeans(num_batches=10)
        for value in rng.normal(size=100):
            small.record(float(value))
        for value in rng.normal(size=10000):
            large.record(float(value))
        assert large.interval()[0] < small.interval()[0]

    def test_interval_covers_known_mean(self):
        rng = np.random.default_rng(1)
        batches = BatchMeans(num_batches=20)
        for value in rng.normal(loc=5.0, size=20000):
            batches.record(float(value))
        half_width, mean = batches.interval(confidence=0.99)
        assert abs(mean - 5.0) < half_width + 0.05

    def test_too_few_observations(self):
        batches = BatchMeans(num_batches=10)
        batches.record(1.0)
        half_width, mean = batches.interval()
        assert math.isnan(half_width)
        assert mean == 1.0


class TestConfidenceInterval:
    def test_empty(self):
        mean, half = confidence_interval([])
        assert math.isnan(mean)

    def test_single_value_infinite_width(self):
        mean, half = confidence_interval([4.0])
        assert mean == 4.0
        assert half == math.inf

    def test_matches_scipy_t(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        mean, half = confidence_interval(values, confidence=0.95)
        assert mean == 3.0
        # Known half width: t(0.975, 4) * s / sqrt(5)
        from scipy import stats
        expected = stats.t.ppf(0.975, 4) * np.std(values, ddof=1) / np.sqrt(5)
        assert half == pytest.approx(expected)
