"""Tests for the centralized-scheduler bottleneck model (Section I)."""

import pytest

from repro.config import SystemConfig
from repro.core import simulate, simulate_centralized
from repro.core.central_system import CentralizedSchedulerSystem
from repro.errors import ConfigurationError, SimulationError
from repro.workload import Workload

LIGHT = Workload(arrival_rate=0.02, transmission_rate=1.0, service_rate=0.2)


class TestConstruction:
    def test_only_single_crossbars(self):
        with pytest.raises(ConfigurationError):
            CentralizedSchedulerSystem(
                SystemConfig.parse("8/1x8x8 OMEGA/2"), LIGHT)
        with pytest.raises(ConfigurationError):
            CentralizedSchedulerSystem(
                SystemConfig.parse("8/2x4x4 XBAR/2"), LIGHT)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ConfigurationError):
            CentralizedSchedulerSystem(
                SystemConfig.parse("8/1x8x8 XBAR/2"), LIGHT,
                scheduling_time=-0.1)

    def test_single_run_only(self):
        system = CentralizedSchedulerSystem(
            SystemConfig.parse("8/1x8x8 XBAR/2"), LIGHT)
        system.run(horizon=100.0)
        with pytest.raises(SimulationError):
            system.run(horizon=100.0)


class TestBehaviour:
    def test_zero_overhead_matches_distributed_fifo(self):
        """A free scheduler is indistinguishable from distributed FIFO
        arbitration — a third independent cross-validation."""
        workload = Workload(arrival_rate=0.05, transmission_rate=1.0,
                            service_rate=0.2)
        central = simulate_centralized("8/1x8x16 XBAR/1", workload,
                                       horizon=40_000.0, warmup=4_000.0,
                                       scheduling_time=0.0, seed=7)
        distributed = simulate("8/1x8x16 XBAR/1", workload,
                               horizon=40_000.0, warmup=4_000.0, seed=7,
                               arbitration="fifo")
        assert central.mean_queueing_delay == pytest.approx(
            distributed.mean_queueing_delay, rel=0.15, abs=0.01)

    def test_delay_grows_with_scheduling_time(self):
        workload = Workload(arrival_rate=0.05, transmission_rate=1.0,
                            service_rate=0.2)
        delays = []
        for overhead in (0.0, 0.2, 0.5):
            result = simulate_centralized("8/1x8x16 XBAR/1", workload,
                                          horizon=20_000.0, warmup=2_000.0,
                                          scheduling_time=overhead, seed=7)
            delays.append(result.mean_queueing_delay)
        assert delays == sorted(delays)
        assert delays[-1] > 2 * delays[0]

    def test_scheduler_saturates_when_serial_rate_below_offered_load(self):
        """Offered 0.4 requests/unit against a scheduler that takes 4 time
        units per request: the serial allocator is the bottleneck and the
        queue runs away — Section I's claim."""
        workload = Workload(arrival_rate=0.05, transmission_rate=1.0,
                            service_rate=0.2)
        result = simulate_centralized("8/1x8x16 XBAR/1", workload,
                                      horizon=20_000.0, warmup=2_000.0,
                                      scheduling_time=4.0, seed=7)
        offered = 8 * 0.05 * (20_000.0 - 2_000.0)
        assert result.completed_tasks < 0.8 * offered

    def test_head_of_line_stall_recovers(self):
        """With one resource, the scheduler stalls at the head whenever the
        resource is busy, yet all work eventually completes."""
        workload = Workload(arrival_rate=0.02, transmission_rate=2.0,
                            service_rate=0.5)
        result = simulate_centralized("4/1x4x1 XBAR/1", workload,
                                      horizon=30_000.0, warmup=3_000.0,
                                      scheduling_time=0.1, seed=2)
        offered = 4 * 0.02
        rate = result.completed_tasks / (result.simulated_time - 3_000.0)
        assert rate == pytest.approx(offered, rel=0.08)
