"""Tests for the RSIN system simulator."""

import math

import pytest

from repro.config import SystemConfig
from repro.core import RsinSystem, simulate
from repro.errors import ConfigurationError, SimulationError
from repro.workload import Workload

LIGHT = Workload(arrival_rate=0.02, transmission_rate=1.0, service_rate=0.1)


class TestBasicRuns:
    def test_simulate_accepts_config_string(self):
        result = simulate("4/1x4x4 XBAR/1", LIGHT, horizon=2_000.0)
        assert result.completed_tasks > 0
        assert result.mean_queueing_delay >= 0.0

    def test_reproducible_given_seed(self):
        first = simulate("4/1x4x4 XBAR/1", LIGHT, horizon=2_000.0, seed=9)
        second = simulate("4/1x4x4 XBAR/1", LIGHT, horizon=2_000.0, seed=9)
        assert first.mean_queueing_delay == second.mean_queueing_delay
        assert first.completed_tasks == second.completed_tasks

    def test_seeds_differ(self):
        first = simulate("4/1x4x4 XBAR/1", LIGHT, horizon=2_000.0, seed=1)
        second = simulate("4/1x4x4 XBAR/1", LIGHT, horizon=2_000.0, seed=2)
        assert first.mean_queueing_delay != second.mean_queueing_delay

    @pytest.mark.parametrize("triplet", [
        "8/1x1x1 SBUS/4",
        "8/2x1x1 SBUS/2",
        "8/1x8x8 XBAR/2",
        "8/1x8x8 OMEGA/1",
        "8/1x8x8 CUBE/1",
        "8/2x4x4 OMEGA/2",
        "8/8x1x1 SBUS/inf",
    ])
    def test_every_network_type_runs(self, triplet):
        result = simulate(triplet, LIGHT, horizon=1_500.0, seed=4)
        assert result.completed_tasks > 0

    def test_run_only_once(self):
        system = RsinSystem(SystemConfig.parse("4/1x4x4 XBAR/1"), LIGHT)
        system.run(horizon=100.0)
        with pytest.raises(SimulationError):
            system.run(horizon=100.0)

    def test_bad_horizon_rejected(self):
        system = RsinSystem(SystemConfig.parse("4/1x4x4 XBAR/1"), LIGHT)
        with pytest.raises(ConfigurationError):
            system.run(horizon=10.0, warmup=20.0)

    def test_bad_arbitration_rejected(self):
        with pytest.raises(ConfigurationError):
            RsinSystem(SystemConfig.parse("4/1x4x4 XBAR/1"), LIGHT,
                       arbitration="alphabetical")


class TestConservationLaws:
    def test_throughput_matches_offered_load(self):
        workload = Workload(arrival_rate=0.05, transmission_rate=1.0,
                            service_rate=0.2)
        result = simulate("8/1x8x8 XBAR/2", workload,
                          horizon=40_000.0, warmup=2_000.0, seed=7)
        offered = 8 * workload.arrival_rate
        completed_rate = result.completed_tasks / (
            result.simulated_time - 2_000.0)
        assert completed_rate == pytest.approx(offered, rel=0.05)

    def test_bus_utilization_law(self):
        """Per-bus utilization must equal lambda_total/(m mu_n) (stable)."""
        workload = Workload(arrival_rate=0.05, transmission_rate=1.0,
                            service_rate=0.2)
        result = simulate("8/1x8x8 XBAR/2", workload,
                          horizon=40_000.0, warmup=2_000.0, seed=7)
        expected = 8 * workload.arrival_rate / (8 * workload.transmission_rate)
        assert result.bus_utilization == pytest.approx(expected, rel=0.05)

    def test_resource_utilization_law(self):
        workload = Workload(arrival_rate=0.05, transmission_rate=1.0,
                            service_rate=0.2)
        result = simulate("8/1x8x8 XBAR/2", workload,
                          horizon=40_000.0, warmup=2_000.0, seed=7)
        expected = 8 * workload.arrival_rate / (16 * workload.service_rate)
        assert result.resource_utilization == pytest.approx(expected, rel=0.05)


class TestAgainstMarkovChain:
    """The event simulator must agree with the exact Section III chain."""

    @pytest.mark.parametrize("arrival,ratio,resources", [
        (0.10, 0.1, 4),
        (0.30, 1.0, 4),
    ])
    def test_sbus_simulation_matches_chain(self, arrival, ratio, resources):
        from repro.markov import solve_sbus
        processors = 8
        workload = Workload(arrival_rate=arrival / processors,
                            transmission_rate=1.0, service_rate=ratio)
        exact = solve_sbus(arrival, 1.0, ratio, resources)
        result = simulate(f"8/1x1x1 SBUS/{resources}", workload,
                          horizon=150_000.0, warmup=10_000.0, seed=12)
        assert result.mean_queueing_delay == pytest.approx(
            exact.mean_delay, rel=0.08)

    def test_private_bus_infinite_resources_is_mm1(self):
        from repro.queueing import mm1_metrics
        workload = Workload(arrival_rate=0.5, transmission_rate=1.0,
                            service_rate=5.0)
        result = simulate("4/4x1x1 SBUS/inf", workload,
                          horizon=100_000.0, warmup=5_000.0, seed=12)
        expected = mm1_metrics(0.5, 1.0).mean_waiting_time
        assert result.mean_queueing_delay == pytest.approx(expected, rel=0.08)


class TestArbitrationPolicies:
    def test_priority_favours_low_index_processors(self):
        """Under contention the asymmetric design serves processor 0 first."""
        workload = Workload(arrival_rate=0.4, transmission_rate=1.0,
                            service_rate=0.5)
        config = SystemConfig.parse("4/1x1x1 SBUS/1")
        system = RsinSystem(config, workload, seed=3, arbitration="priority")
        system.run(horizon=20_000.0, warmup=1_000.0)
        waits = {}
        for processor in system.processors:
            waits[processor.index] = len(processor.queue)
        # Lowest-index processor should not have the longest backlog.
        assert waits[0] <= max(waits.values())

    @pytest.mark.parametrize("arbitration", ["priority", "random", "fifo"])
    def test_all_policies_complete_work(self, arbitration):
        result = simulate("4/1x4x4 XBAR/1", LIGHT, horizon=2_000.0,
                          arbitration=arbitration)
        assert result.completed_tasks > 0

    def test_fifo_reduces_delay_variance_vs_priority(self):
        """FIFO wakeups serve the oldest head-of-line task first, so the
        priority policy's starvation tail is longer or equal."""
        workload = Workload(arrival_rate=0.25, transmission_rate=1.0,
                            service_rate=0.5)
        fifo = simulate("4/1x1x1 SBUS/2", workload, horizon=30_000.0,
                        warmup=1_000.0, seed=5, arbitration="fifo")
        priority = simulate("4/1x1x1 SBUS/2", workload, horizon=30_000.0,
                            warmup=1_000.0, seed=5, arbitration="priority")
        # Same throughput either way.
        assert fifo.completed_tasks == pytest.approx(
            priority.completed_tasks, rel=0.03)


class TestOmegaBlockingInSystem:
    def test_blocking_recorded_under_heavy_network_load(self):
        workload = Workload(arrival_rate=0.9, transmission_rate=1.0,
                            service_rate=4.0)
        result = simulate("16/1x16x16 OMEGA/2", workload,
                          horizon=10_000.0, warmup=500.0, seed=5)
        assert result.network_blocking_fraction > 0.05

    def test_crossbar_never_blocks_internally(self):
        workload = Workload(arrival_rate=0.9, transmission_rate=1.0,
                            service_rate=4.0)
        result = simulate("16/1x16x16 XBAR/2", workload,
                          horizon=10_000.0, warmup=500.0, seed=5)
        assert result.network_blocking_fraction == 0.0
