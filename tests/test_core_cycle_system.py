"""Tests for the cycle-accurate crossbar system (assumption (c) ablation)."""

import pytest

from repro.config import SystemConfig
from repro.core import simulate, simulate_cycle_accurate
from repro.core.cycle_system import CycleAccurateCrossbarSystem
from repro.errors import ConfigurationError, SimulationError
from repro.workload import Workload

LIGHT = Workload(arrival_rate=0.02, transmission_rate=1.0, service_rate=0.2)


class TestConstruction:
    def test_only_single_crossbars(self):
        with pytest.raises(ConfigurationError):
            CycleAccurateCrossbarSystem(
                SystemConfig.parse("8/1x8x8 OMEGA/2"), LIGHT)
        with pytest.raises(ConfigurationError):
            CycleAccurateCrossbarSystem(
                SystemConfig.parse("8/2x4x4 XBAR/2"), LIGHT)

    def test_negative_gate_time_rejected(self):
        with pytest.raises(ConfigurationError):
            CycleAccurateCrossbarSystem(
                SystemConfig.parse("8/1x8x8 XBAR/2"), LIGHT, gate_time=-1.0)

    def test_cycle_time_formula(self):
        system = CycleAccurateCrossbarSystem(
            SystemConfig.parse("8/1x8x16 XBAR/1"), LIGHT, gate_time=0.01)
        # (4 + 1) gate levels x (p + m) = 5 * 24 cells = 120 gate delays.
        assert system.cycle_time == pytest.approx(0.01 * 5 * 24)

    def test_single_run_only(self):
        system = CycleAccurateCrossbarSystem(
            SystemConfig.parse("8/1x8x8 XBAR/2"), LIGHT)
        system.run(horizon=100.0)
        with pytest.raises(SimulationError):
            system.run(horizon=100.0)


class TestBehaviour:
    def test_zero_gate_time_matches_event_driven_model(self):
        """The two crossbar simulators must agree when cycles are free —
        a strong cross-validation of both schedulers."""
        workload = Workload(arrival_rate=0.05, transmission_rate=1.0,
                            service_rate=0.2)
        cycles = simulate_cycle_accurate("8/1x8x16 XBAR/1", workload,
                                         horizon=40_000.0, warmup=4_000.0,
                                         gate_time=0.0, seed=7)
        events = simulate("8/1x8x16 XBAR/1", workload, horizon=40_000.0,
                          warmup=4_000.0, seed=7)
        assert cycles.mean_queueing_delay == pytest.approx(
            events.mean_queueing_delay, rel=0.15, abs=0.01)
        assert cycles.completed_tasks == pytest.approx(
            events.completed_tasks, rel=0.02)

    def test_delay_grows_with_gate_time(self):
        workload = Workload(arrival_rate=0.05, transmission_rate=1.0,
                            service_rate=0.2)
        delays = []
        for gate_time in (0.0, 0.005, 0.02):
            result = simulate_cycle_accurate(
                "8/1x8x16 XBAR/1", workload, horizon=20_000.0,
                warmup=2_000.0, gate_time=gate_time, seed=7)
            delays.append(result.mean_queueing_delay)
        assert delays == sorted(delays)
        assert delays[-1] > 2 * delays[0]

    def test_cycle_count_tracked(self):
        system = CycleAccurateCrossbarSystem(
            SystemConfig.parse("8/1x8x8 XBAR/2"), LIGHT, gate_time=0.01)
        system.run(horizon=2_000.0)
        assert system.cycles_run > 0

    def test_throughput_preserved_at_moderate_gate_time(self):
        """Slower cycles delay tasks but do not lose them (work conserved
        below saturation)."""
        workload = Workload(arrival_rate=0.03, transmission_rate=1.0,
                            service_rate=0.2)
        result = simulate_cycle_accurate("8/1x8x16 XBAR/1", workload,
                                         horizon=40_000.0, warmup=4_000.0,
                                         gate_time=0.01, seed=3)
        offered = 8 * workload.arrival_rate
        rate = result.completed_tasks / (result.simulated_time - 4_000.0)
        assert rate == pytest.approx(offered, rel=0.05)
