"""Unit and property tests for the multistage topologies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.networks import (
    BaselineTopology,
    CubeTopology,
    OmegaTopology,
    make_topology,
)

TOPOLOGIES = [OmegaTopology, CubeTopology, BaselineTopology]
SIZES = [2, 4, 8, 16]


@pytest.fixture(params=TOPOLOGIES, ids=lambda cls: cls.__name__)
def topology_class(request):
    return request.param


class TestStructure:
    def test_stage_count(self, topology_class):
        assert topology_class(8).stages == 3
        assert topology_class(16).stages == 4

    def test_non_power_of_two_rejected(self, topology_class):
        with pytest.raises(ConfigurationError):
            topology_class(6)

    @pytest.mark.parametrize("size", SIZES)
    def test_input_map_is_a_perfect_pairing(self, topology_class, size):
        topology = topology_class(size)
        for stage in range(topology.stages):
            seen = {}
            for link in range(size):
                box, port = topology.input_map(stage, link)
                assert 0 <= box < size // 2
                assert port in (0, 1)
                assert (box, port) not in seen.values()
                seen[link] = (box, port)
            assert len(set(seen.values())) == size

    @pytest.mark.parametrize("size", SIZES)
    def test_output_links_distinct(self, topology_class, size):
        topology = topology_class(size)
        for stage in range(topology.stages):
            outputs = {topology.output_link(stage, box, port)
                       for box in range(size // 2) for port in (0, 1)}
            assert outputs == set(range(size))

    def test_box_links_consistent_with_input_map(self, topology_class):
        topology = topology_class(8)
        for stage in range(topology.stages):
            for box in range(4):
                upper, lower = topology.box_links(stage, box)
                assert topology.input_map(stage, upper) == (box, 0)
                assert topology.input_map(stage, lower) == (box, 1)


class TestTagRouting:
    @pytest.mark.parametrize("size", SIZES)
    def test_every_pair_reaches_destination(self, topology_class, size):
        topology = topology_class(size)
        for source in range(size):
            for destination in range(size):
                path = topology.route_by_tag(source, destination)
                assert path[0] == (0, source)
                assert path[-1] == (topology.stages, destination)
                assert len(path) == topology.stages + 1

    def test_path_boxes_length(self, topology_class):
        topology = topology_class(16)
        assert len(topology.path_boxes(3, 9)) == 4

    def test_a_full_permutation_is_conflict_free(self, topology_class):
        """Every topology admits at least one full permutation: identity
        for Omega/cube, bit reversal for the baseline network (its stage-0
        boxes pair adjacent sources, so the identity self-conflicts)."""
        topology = topology_class(8)
        if topology_class is BaselineTopology:
            permutation = [int(format(x, "03b")[::-1], 2) for x in range(8)]
        else:
            permutation = list(range(8))
        pairs = list(enumerate(permutation))
        assert not topology.paths_conflict(pairs)

    def test_duplicate_destination_conflicts(self, topology_class):
        topology = topology_class(8)
        assert topology.paths_conflict([(0, 3), (1, 3)])

    def test_out_of_range_rejected(self, topology_class):
        topology = topology_class(8)
        with pytest.raises(ConfigurationError):
            topology.route_by_tag(8, 0)
        with pytest.raises(ConfigurationError):
            topology.route_by_tag(0, -1)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_links_of_path_matches_route(self, data):
        topology_class = data.draw(st.sampled_from(TOPOLOGIES))
        size = data.draw(st.sampled_from(SIZES))
        topology = topology_class(size)
        source = data.draw(st.integers(0, size - 1))
        destination = data.draw(st.integers(0, size - 1))
        assert topology.links_of_path(source, destination) == frozenset(
            topology.route_by_tag(source, destination))


class TestOmegaSpecifics:
    def test_msb_first_routing(self):
        topology = OmegaTopology(8)
        assert [topology.routing_bit(stage, 0b110) for stage in range(3)] == [1, 1, 0]

    def test_shuffle_exchange_shape(self):
        # Column-0 link 1 feeds box 1 input 0 after the shuffle (1 -> 2).
        assert OmegaTopology(8).input_map(0, 1) == (1, 0)


class TestCubeSpecifics:
    def test_lsb_first_routing(self):
        topology = CubeTopology(8)
        assert [topology.routing_bit(stage, 0b110) for stage in range(3)] == [0, 1, 1]

    def test_stage_pairs_links_differing_in_axis_bit(self):
        topology = CubeTopology(8)
        for stage in range(3):
            for link in range(8):
                box, port = topology.input_map(stage, link)
                partner = link ^ (1 << stage)
                partner_box, partner_port = topology.input_map(stage, partner)
                assert box == partner_box
                assert port != partner_port


class TestBaselineSpecifics:
    def test_msb_first_routing(self):
        topology = BaselineTopology(8)
        assert [topology.routing_bit(stage, 0b110) for stage in range(3)] == [1, 1, 0]

    def test_stage_zero_pairs_adjacent_links(self):
        topology = BaselineTopology(8)
        assert topology.input_map(0, 0) == (0, 0)
        assert topology.input_map(0, 1) == (0, 1)

    def test_upper_output_feeds_top_half(self):
        topology = BaselineTopology(8)
        for box in range(4):
            assert topology.output_link(0, box, 0) < 4
            assert topology.output_link(0, box, 1) >= 4

    def test_wiring_differs_from_omega_and_cube(self):
        baseline = BaselineTopology(8)
        for other in (OmegaTopology(8), CubeTopology(8)):
            assert any(
                baseline.input_map(stage, link) != other.input_map(stage, link)
                for stage in range(3) for link in range(8))


class TestFactory:
    def test_factory_dispatch(self):
        assert isinstance(make_topology("omega", 8), OmegaTopology)
        assert isinstance(make_topology("CUBE", 8), CubeTopology)
        assert isinstance(make_topology("baseline", 8), BaselineTopology)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_topology("BANYAN", 8)
