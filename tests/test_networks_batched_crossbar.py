"""Tests for the batched (vectorized) crossbar kernel.

The batched kernel's contract is equivalence with the scalar gate-level
model: :func:`cell_logic_batch` must reproduce :func:`cell_logic` on every
input combination, the anti-diagonal wavefront must settle to the same
grants/latches as the scalar cell-by-cell sweep on arbitrary request
patterns, and the rank-paired matcher must agree with both the wavefront
and the closed-form :func:`priority_match`.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SchedulingError
from repro.networks import (
    MODE_REQUEST,
    MODE_RESET,
    REQUEST_GATE_DELAY,
    RESET_GATE_DELAY,
    BatchedCrossbar,
    DistributedCrossbar,
    cell_logic,
    cell_logic_batch,
    masked_match_pairs_batch,
    match_pairs_batch,
    match_requests_batch,
    priority_match,
)


class TestCellLogicBatch:
    @pytest.mark.parametrize("mode", [MODE_REQUEST, MODE_RESET])
    @pytest.mark.parametrize("x", [0, 1])
    @pytest.mark.parametrize("y", [0, 1])
    @pytest.mark.parametrize("latch", [0, 1])
    @pytest.mark.parametrize("alive", [0, 1])
    def test_all_thirtytwo_combinations_match_scalar(self, mode, x, y,
                                                     latch, alive):
        """Exhaustive: batched truth table == Table I (plus the dead-cell
        transparency rows), combo by combo."""
        expected = cell_logic(mode, x, y, bool(latch), alive=bool(alive))
        arrays = cell_logic_batch(
            mode, np.array([x], dtype=np.uint8), np.array([y], dtype=np.uint8),
            np.array([latch], dtype=np.uint8),
            alive=np.array([alive], dtype=np.uint8))
        assert tuple(int(value[0]) for value in arrays) == expected
        if alive:
            # alive=None must keep the original (unmasked) closed forms.
            unmasked = cell_logic_batch(
                mode, np.array([x], dtype=np.uint8),
                np.array([y], dtype=np.uint8),
                np.array([latch], dtype=np.uint8))
            assert tuple(int(v[0]) for v in unmasked) == expected

    def test_vectorized_over_all_combinations_at_once(self):
        """One call over the full 8-combination plane, both modes."""
        xs = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.uint8)
        ys = np.array([0, 0, 1, 1, 0, 0, 1, 1], dtype=np.uint8)
        latches = np.array([0, 1, 0, 1, 0, 1, 0, 1], dtype=np.uint8)
        for mode in (MODE_REQUEST, MODE_RESET):
            batch = cell_logic_batch(mode, xs, ys, latches)
            for index in range(8):
                scalar = cell_logic(mode, int(xs[index]), int(ys[index]),
                                    bool(latches[index]))
                assert tuple(int(v[index]) for v in batch) == scalar

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            cell_logic_batch("half-duplex", np.zeros(1, dtype=np.uint8),
                             np.zeros(1, dtype=np.uint8),
                             np.zeros(1, dtype=np.uint8))


def _scalar_reference(processors, buses, latched, requesting, available):
    """Scalar wavefront outcome for one replication's state and edges."""
    switch = DistributedCrossbar(processors, buses)
    for row, column in latched:
        switch._latch[row][column] = True
    return switch, switch.request_cycle(sorted(requesting), sorted(available))


class TestBatchedWavefront:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_randomized_wavefronts_match_scalar(self, data):
        """Random latch states and edges: batched grants == scalar grants."""
        processors = data.draw(st.integers(1, 6), label="p")
        buses = data.draw(st.integers(1, 6), label="m")
        replications = data.draw(st.integers(1, 5), label="R")
        batched = BatchedCrossbar(replications, processors, buses)
        scalars = []
        requesting = np.zeros((replications, processors), dtype=np.uint8)
        available = np.zeros((replications, buses), dtype=np.uint8)
        for k in range(replications):
            rows = data.draw(st.sets(st.integers(0, processors - 1)),
                             label=f"rows{k}")
            columns = data.draw(st.sets(st.integers(0, buses - 1)),
                                label=f"cols{k}")
            # A consistent pre-latched state: at most one column per row.
            latched = []
            for row in range(processors):
                if data.draw(st.booleans(), label=f"latch{k}-{row}"):
                    column = data.draw(st.integers(0, buses - 1),
                                       label=f"latchcol{k}-{row}")
                    latched.append((row, column))
            # Scalar semantics latch each (row, col) pair independently;
            # rows already latched do not raise X in the paper's protocol.
            rows -= {row for row, _ in latched}
            batched._latch[k] = 0
            for row, column in latched:
                batched._latch[k, row, column] = 1
            requesting[k, sorted(rows)] = 1
            available[k, sorted(columns)] = 1
            scalars.append(_scalar_reference(processors, buses, latched,
                                             rows, columns))
        result = batched.request_cycle(requesting, available)
        for k, (switch, scalar) in enumerate(scalars):
            granted = {(row, int(col)) for row, col in scalar.granted.items()}
            batch_granted = {(int(r), int(c))
                             for r, c in zip(*np.nonzero(result.granted[k]))}
            assert batch_granted == granted
            assert {int(r) for r in np.nonzero(result.unsatisfied[k])[0]} \
                == scalar.unsatisfied
            assert {int(c) for c in np.nonzero(result.unallocated[k])[0]} \
                == scalar.unallocated
            for row in range(processors):
                for column in range(buses):
                    assert bool(batched._latch[k, row, column]) \
                        == switch._latch[row][column]

    def test_gate_delays_match_scalar_worst_path(self):
        """Batched request/reset delays equal the scalar model's bounds."""
        for processors, buses in ((1, 1), (4, 4), (16, 8), (3, 7)):
            batched = BatchedCrossbar(2, processors, buses)
            request = batched.request_cycle(
                np.ones((2, processors), dtype=np.uint8),
                np.ones((2, buses), dtype=np.uint8))
            scalar = DistributedCrossbar(processors, buses).request_cycle(
                list(range(processors)), list(range(buses)))
            assert request.gate_delays == scalar.gate_delays
            assert request.gate_delays == REQUEST_GATE_DELAY * (
                processors + buses - 1)
            reset = batched.reset_cycle(np.ones((2, processors),
                                                dtype=np.uint8))
            assert reset.gate_delays == RESET_GATE_DELAY * (processors + buses)

    def test_reset_cycle_clears_only_selected_rows(self):
        batched = BatchedCrossbar(2, 3, 3)
        batched.request_cycle(np.ones((2, 3), dtype=np.uint8),
                              np.ones((2, 3), dtype=np.uint8))
        resetting = np.array([[1, 0, 0], [0, 1, 1]], dtype=np.uint8)
        result = batched.reset_cycle(resetting)
        connections = batched.connections()
        assert connections[0].tolist() == [-1, 1, 2]
        assert connections[1].tolist() == [0, -1, -1]
        assert result.granted.sum() == 3

    def test_double_latch_is_a_hardware_bug(self):
        batched = BatchedCrossbar(1, 2, 2)
        batched.request_cycle(np.array([[1, 0]], dtype=np.uint8),
                              np.array([[1, 0]], dtype=np.uint8))
        with pytest.raises(SchedulingError):
            # Offering the latched cell's bus again while its row re-raises
            # X would re-set the latch — the scalar model raises too.
            batched.request_cycle(np.array([[1, 0]], dtype=np.uint8),
                                  np.array([[1, 0]], dtype=np.uint8))

    def test_shape_validation(self):
        batched = BatchedCrossbar(2, 3, 4)
        with pytest.raises(SchedulingError):
            batched.request_cycle(np.zeros((2, 4), dtype=np.uint8),
                                  np.zeros((2, 4), dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            BatchedCrossbar(0, 3, 4)


class TestBatchedMatching:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_match_agrees_with_priority_match_and_wavefront(self, data):
        processors = data.draw(st.integers(1, 6), label="p")
        buses = data.draw(st.integers(1, 6), label="m")
        replications = data.draw(st.integers(1, 6), label="R")
        requesting = np.array(
            [[data.draw(st.integers(0, 1)) for _ in range(processors)]
             for _ in range(replications)], dtype=np.uint8)
        available = np.array(
            [[data.draw(st.integers(0, 1)) for _ in range(buses)]
             for _ in range(replications)], dtype=np.uint8)
        grants = match_requests_batch(requesting, available)
        batched = BatchedCrossbar(replications, processors, buses)
        wavefront = batched.request_cycle(requesting, available)
        assert (grants == wavefront.granted).all()
        for k in range(replications):
            rows = [int(r) for r in np.nonzero(requesting[k])[0]]
            columns = [int(c) for c in np.nonzero(available[k])[0]]
            expected = priority_match(rows, columns)
            got = {int(r): int(c) for r, c in zip(*np.nonzero(grants[k]))}
            assert got == expected

    def test_pairs_come_back_replication_major_row_ascending(self):
        requesting = np.array([[0, 1, 1], [1, 0, 1]], dtype=np.uint8)
        available = np.array([[1, 1], [1, 0]], dtype=np.uint8)
        reps, rows, cols = match_pairs_batch(requesting, available)
        assert reps.tolist() == [0, 0, 1]
        assert rows.tolist() == [1, 2, 0]
        assert cols.tolist() == [0, 1, 0]


class TestMaskedMatching:
    """The faulted-fabric kernel: dead cells masked into the gate planes."""

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_masked_wavefront_matches_faulted_distributed_crossbar(
            self, data):
        """Random dead-cell sets: masked grants == scalar faulted switch."""
        processors = data.draw(st.integers(1, 6), label="p")
        buses = data.draw(st.integers(1, 6), label="m")
        replications = data.draw(st.integers(1, 5), label="R")
        alive = np.ones((processors, buses), dtype=np.uint8)
        for row in range(processors):
            for column in range(buses):
                if data.draw(st.booleans(), label=f"dead{row}-{column}"):
                    alive[row, column] = 0
        requesting = np.array(
            [[data.draw(st.integers(0, 1)) for _ in range(processors)]
             for _ in range(replications)], dtype=np.uint8)
        available = np.array(
            [[data.draw(st.integers(0, 1)) for _ in range(buses)]
             for _ in range(replications)], dtype=np.uint8)
        reps, rows, cols = masked_match_pairs_batch(requesting, available,
                                                    alive)
        by_replication = {}
        for k, row, column in zip(reps.tolist(), rows.tolist(),
                                  cols.tolist()):
            by_replication.setdefault(k, {})[row] = column
        for k in range(replications):
            switch = DistributedCrossbar(processors, buses)
            for row in range(processors):
                for column in range(buses):
                    if not alive[row, column]:
                        switch.fail_cell(row, column)
            scalar = switch.request_cycle(
                [int(r) for r in np.nonzero(requesting[k])[0]],
                [int(c) for c in np.nonzero(available[k])[0]])
            assert by_replication.get(k, {}) == scalar.granted

    def test_all_alive_mask_equals_unmasked_matcher(self):
        requesting = np.array([[1, 1, 0, 1], [0, 1, 1, 1]], dtype=np.uint8)
        available = np.array([[1, 0, 1], [1, 1, 1]], dtype=np.uint8)
        alive = np.ones((4, 3), dtype=np.uint8)
        masked = masked_match_pairs_batch(requesting, available, alive)
        plain = match_pairs_batch(requesting, available)
        for got, expected in zip(masked, plain):
            assert got.tolist() == expected.tolist()

    def test_masked_pairs_replication_major_row_ascending(self):
        """The dispatch-order contract the lockstep engine relies on."""
        requesting = np.ones((2, 3), dtype=np.uint8)
        available = np.ones((2, 3), dtype=np.uint8)
        alive = np.array([[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=np.uint8)
        reps, rows, cols = masked_match_pairs_batch(requesting, available,
                                                    alive)
        order = list(zip(reps.tolist(), rows.tolist()))
        assert order == sorted(order)
        # Row 0 skips its dead (0,0) cell and takes column 1; row 1 takes
        # the still-free column 0; row 2's only remaining column is its
        # dead (2, 2) cell, so it stays unmatched.
        assert reps.tolist() == [0, 0, 1, 1]
        assert rows.tolist() == [0, 1, 0, 1]
        assert cols.tolist() == [1, 0, 1, 0]

    def test_mask_shape_validated(self):
        with pytest.raises(SchedulingError):
            masked_match_pairs_batch(np.ones((1, 2), dtype=np.uint8),
                                     np.ones((1, 2), dtype=np.uint8),
                                     np.ones((3, 2), dtype=np.uint8))

    def test_batched_crossbar_fail_and_repair_cell(self):
        batched = BatchedCrossbar(2, 2, 2)
        batched.fail_cell(0, 0)
        assert batched.alive_mask[0, 0] == 0
        result = batched.request_cycle(np.ones((2, 2), dtype=np.uint8),
                                       np.ones((2, 2), dtype=np.uint8))
        # Row 0's dead (0,0) is transparent: row 0 latches column 1, so
        # row 1 (whose cells are healthy) falls through to column 0.
        for k in range(2):
            granted = {(int(r), int(c))
                       for r, c in zip(*np.nonzero(result.granted[k]))}
            assert granted == {(0, 1), (1, 0)}
        with pytest.raises(SchedulingError):
            batched.fail_cell(0, 1)  # latched in both replications
        batched.reset_cycle(np.ones((2, 2), dtype=np.uint8))
        batched.fail_cell(0, 1)
        batched.repair_cell(0, 0)
        assert batched.alive_mask[0, 0] == 1
        with pytest.raises(SchedulingError):
            batched.fail_cell(5, 0)

    def test_scalar_crossbar_fail_cell_guards_latched_cells(self):
        switch = DistributedCrossbar(2, 2)
        switch.request_cycle([0], [0])
        with pytest.raises(SchedulingError):
            switch.fail_cell(0, 0)
        switch.reset_cycle([0])
        switch.fail_cell(0, 0)
        assert not switch.alive(0, 0)
        outcome = switch.request_cycle([0], [0, 1])
        assert outcome.granted == {0: 1}
        switch.repair_cell(0, 0)
        assert switch.alive(0, 0)
