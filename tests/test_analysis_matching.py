"""Tests for the polynomial optimal allocator (max-flow; the paper's [35])."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.matching import (
    allocation_shortfall,
    build_flow_network,
    optimal_allocation,
)
from repro.errors import ConfigurationError
from repro.networks import (
    BaselineTopology,
    CubeTopology,
    OmegaTopology,
    max_conflict_free,
)


class TestOptimalAllocation:
    def test_empty_inputs(self):
        topology = OmegaTopology(8)
        assert optimal_allocation(topology, [], [1, 2]) == (0, {})
        assert optimal_allocation(topology, [1], []) == (0, {})

    def test_single_pair(self):
        count, assignment = optimal_allocation(OmegaTopology(8), [3], [6])
        assert count == 1
        assert assignment == {3: 6}

    def test_full_permutation_achievable(self):
        """8 requesters, 8 free ports on a free Omega network: max-flow
        finds a full conflict-free permutation (2^12 of them exist)."""
        topology = OmegaTopology(8)
        count, assignment = optimal_allocation(
            topology, list(range(8)), list(range(8)))
        assert count == 8
        assert sorted(assignment.values()) == list(range(8))
        assert not topology.paths_conflict(list(assignment.items()))

    def test_section_two_example(self):
        """The paper's example: an optimal scheduler allocates all 3."""
        count, assignment = optimal_allocation(
            OmegaTopology(8), [0, 1, 2], [0, 1, 2])
        assert count == 3

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_allocation(OmegaTopology(8), [9], [0])
        with pytest.raises(ConfigurationError):
            optimal_allocation(OmegaTopology(8), [0], [-1])

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_matches_exhaustive_search(self, data):
        """Max-flow equals the factorial enumeration on random instances —
        on every implemented topology."""
        topology_class = data.draw(st.sampled_from(
            [OmegaTopology, CubeTopology, BaselineTopology]))
        topology = topology_class(8)
        sources = data.draw(st.lists(st.integers(0, 7), unique=True,
                                     min_size=1, max_size=4))
        ports = data.draw(st.lists(st.integers(0, 7), unique=True,
                                   min_size=1, max_size=4))
        exhaustive, _ = max_conflict_free(topology, sources, ports)
        flow, assignment = optimal_allocation(topology, sources, ports)
        assert flow == exhaustive
        assert len(assignment) == flow
        assert not topology.paths_conflict(list(assignment.items()))

    def test_polynomial_scaling(self):
        """Solves a 64x64 instance (far beyond factorial reach) quickly."""
        rng = random.Random(1)
        topology = OmegaTopology(64)
        sources = rng.sample(range(64), 48)
        ports = rng.sample(range(64), 48)
        count, assignment = optimal_allocation(topology, sources, ports)
        assert count >= 40
        assert not topology.paths_conflict(list(assignment.items()))

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_upper_bounds_every_scheduler(self, data):
        """No scheduler — distributed, greedy, or random — allocates more
        than the max-flow optimum."""
        from repro.networks import ClockedMultistageScheduler
        topology = OmegaTopology(8)
        sources = data.draw(st.lists(st.integers(0, 7), unique=True,
                                     min_size=1, max_size=6))
        ports = data.draw(st.lists(st.integers(0, 7), unique=True,
                                   min_size=1, max_size=6))
        best, _ = optimal_allocation(topology, sources, ports)
        scheduler = ClockedMultistageScheduler(
            topology, {port: 1 for port in ports})
        result = scheduler.run(sources)
        assert len(result.allocated) <= best


class TestShortfall:
    def test_zero_when_nonblocking_outcome_exists(self):
        topology = OmegaTopology(8)
        assert allocation_shortfall(topology, list(range(8)),
                                    list(range(8))) == 0

    def test_positive_when_topology_blocks(self):
        """Two requesters sharing a stage-0 box that must reach two ports
        in the same half cannot both be routed on a baseline network."""
        topology = BaselineTopology(8)
        # Sources 0,1 share box (0,0); ports 0 and 1 are both in the top
        # half of every block, so both circuits need the same box output.
        shortfall = allocation_shortfall(topology, [0, 1], [0, 1])
        assert shortfall == 1


class TestFlowNetwork:
    def test_graph_shape(self):
        topology = OmegaTopology(8)
        graph = build_flow_network(topology, [0, 1], [5])
        # 4 columns x 8 links x 2 nodes + SOURCE + SINK.
        assert graph.number_of_nodes() == 4 * 8 * 2 + 2
        # Internal link arcs: 32; wiring arcs: 3 stages x 8 links x 2 ports;
        # plus 2 source arcs and 1 sink arc.
        assert graph.number_of_edges() == 32 + 48 + 3

    def test_unit_capacities(self):
        graph = build_flow_network(OmegaTopology(4), [0], [3])
        assert all(data["capacity"] == 1
                   for _u, _v, data in graph.edges(data=True))
