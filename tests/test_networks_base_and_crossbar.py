"""Tests for the fabric base class, bus fabric, crossbar fabric, tokens."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SchedulingError
from repro.networks import (
    CrossbarFabric,
    SingleBusFabric,
    TokenRingArbiter,
    random_match,
)


class TestSingleBusFabric:
    def test_connects_when_port_is_candidate(self):
        fabric = SingleBusFabric(inputs=4)
        connection = fabric.connect(2, {0})
        assert connection is not None
        assert connection.output_port == 0
        assert fabric.active_connections == {connection}

    def test_refuses_without_candidate(self):
        fabric = SingleBusFabric(inputs=4)
        assert fabric.connect(0, set()) is None
        assert fabric.blocking_fraction == 1.0

    def test_release_restores_state(self):
        fabric = SingleBusFabric(inputs=4)
        connection = fabric.connect(1, {0})
        fabric.release(connection)
        assert fabric.active_connections == frozenset()

    def test_double_release_rejected(self):
        fabric = SingleBusFabric(inputs=4)
        connection = fabric.connect(1, {0})
        fabric.release(connection)
        with pytest.raises(SchedulingError):
            fabric.release(connection)

    def test_input_cannot_hold_two_connections(self):
        fabric = SingleBusFabric(inputs=4)
        fabric.connect(1, {0})
        with pytest.raises(SchedulingError):
            fabric.connect(1, {0})

    def test_port_range_checked(self):
        fabric = SingleBusFabric(inputs=4)
        with pytest.raises(SchedulingError):
            fabric.connect(9, {0})
        with pytest.raises(SchedulingError):
            fabric.connect(0, {3})

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            SingleBusFabric(inputs=0)


class TestCrossbarFabric:
    def test_priority_takes_lowest_port(self):
        fabric = CrossbarFabric(4, 8, arbitration="priority")
        connection = fabric.connect(0, {5, 2, 7})
        assert connection.output_port == 2

    def test_never_blocks_internally(self):
        fabric = CrossbarFabric(4, 4)
        connections = [fabric.connect(i, {i}) for i in range(4)]
        assert all(c is not None for c in connections)
        assert fabric.blocking_fraction == 0.0

    def test_random_arbitration_covers_candidates(self):
        fabric = CrossbarFabric(4, 8, arbitration="random",
                                rng=random.Random(3))
        seen = set()
        for _ in range(60):
            connection = fabric.connect(0, {1, 4, 6})
            seen.add(connection.output_port)
            fabric.release(connection)
        assert seen == {1, 4, 6}

    def test_unknown_arbitration_rejected(self):
        with pytest.raises(ConfigurationError):
            CrossbarFabric(4, 4, arbitration="round-robin")

    def test_crossbar_hops_is_one(self):
        fabric = CrossbarFabric(2, 2)
        assert fabric.connect(0, {0}).hops == 1


class TestTokenRing:
    def test_every_request_served_when_buses_suffice(self):
        arbiter = TokenRingArbiter(8, 8, rng=random.Random(0))
        assignment = arbiter.arbitrate([0, 3, 5], [1, 2, 4])
        assert set(assignment.keys()) == {0, 3, 5}
        assert len(set(assignment.values())) == 3

    def test_no_assignment_without_requests_or_buses(self):
        arbiter = TokenRingArbiter(4, 4)
        assert arbiter.arbitrate([], [0]) == {}
        assert arbiter.arbitrate([0], []) == {}

    def test_fairness_across_rounds(self):
        """Token drift makes the winner roughly uniform over requesters."""
        wins = {0: 0, 1: 0, 2: 0, 3: 0}
        arbiter = TokenRingArbiter(4, 4, rng=random.Random(7))
        for _ in range(600):
            assignment = arbiter.arbitrate([0, 1, 2, 3], [0])
            winner = next(iter(assignment))
            wins[winner] += 1
            arbiter.drift(3)
        for count in wins.values():
            assert 60 < count < 340  # no processor starves or dominates

    def test_negative_drift_rejected(self):
        with pytest.raises(ValueError):
            TokenRingArbiter(2, 2).drift(-1)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenRingArbiter(0, 4)


class TestRandomMatch:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_is_a_partial_matching(self, data):
        rows = data.draw(st.lists(st.integers(0, 9), max_size=10))
        columns = data.draw(st.lists(st.integers(0, 9), max_size=10))
        assignment = random_match(rows, columns, random.Random(0))
        assert len(assignment) == min(len(set(rows)), len(set(columns)))
        assert len(set(assignment.values())) == len(assignment)
        assert set(assignment.keys()) <= set(rows)
        assert set(assignment.values()) <= set(columns)
