"""Lockstep property tests for incremental Omega status propagation.

The incremental layer's contract is *behavioral identity*: a scheduler
with ``incremental_status=True`` must be indistinguishable — outcomes,
tick counts, register contents, link occupancy, free-resource maps — from
the full per-tick recompute it replaces, under any interleaving of batch
runs with allocate/release/fault events between them.  These tests drive
an incremental scheduler and a full-recompute twin through identical
randomized event sequences and compare complete observable state after
every batch.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.networks.omega import ClockedMultistageScheduler
from repro.networks.topology import OmegaTopology


def _full_state(scheduler):
    """Every observable of a scheduler, in comparable form."""
    registers = [
        [(box.snapshot(), dict(box.circuit)) for box in stage_boxes]
        for stage_boxes in scheduler.boxes
    ]
    free = {port: dict(counts)
            for port, counts in scheduler.free_resources.items()}
    return registers, free, set(scheduler._busy)


def _outcome_key(result):
    return (result.ticks, sorted(
        (o.source, o.resource_type, o.port, o.hops, o.attempts,
         o.completed_tick)
        for o in result.outcomes.values()))


def _random_event(rng, scheduler, size):
    """One random allocate/release/fault event applied to ``scheduler``."""
    kind = rng.choice(("set", "adjust", "fault"))
    port = rng.randrange(size)
    if kind == "set":
        scheduler.set_resources(port, rng.randrange(0, 3))
    elif kind == "adjust":
        current = scheduler.free_resources.get(port, {}).get(0, 0)
        delta = rng.choice((-1, 1))
        if current + delta >= 0:
            scheduler.adjust_resources(port, delta)
    else:
        # Fault: take the port's resources away entirely.
        scheduler.set_resources(port, 0)


def _drive_pair(seed, size, rounds):
    """Drive incremental and full twins through one random episode."""
    initial = {port: 1 for port in range(0, size, 2)}
    incremental = ClockedMultistageScheduler(
        OmegaTopology(size), dict(initial), incremental_status=True)
    full = ClockedMultistageScheduler(
        OmegaTopology(size), dict(initial), incremental_status=False)
    for round_index in range(rounds):
        event_rng = random.Random(f"{seed}-{round_index}-events")
        for event_index in range(event_rng.randrange(0, 6)):
            # A fresh seeded Random per event keeps both twins' sequences
            # identical without sharing generator state between them.
            _random_event(random.Random(f"{seed}-{round_index}-{event_index}"),
                          incremental, size)
            _random_event(random.Random(f"{seed}-{round_index}-{event_index}"),
                          full, size)
        batch_rng = random.Random(f"{seed}-{round_index}-batch")
        requesters = sorted(batch_rng.sample(
            range(size), batch_rng.randrange(1, size // 2 + 1)))
        inc_result = incremental.run(requesters)
        full_result = full.run(requesters)
        assert _outcome_key(inc_result) == _outcome_key(full_result), (
            f"outcomes diverged (seed={seed}, round={round_index})")
        assert _full_state(incremental) == _full_state(full), (
            f"state diverged (seed={seed}, round={round_index})")


class TestLockstepEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_episodes_size8(self, seed):
        _drive_pair(seed, size=8, rounds=5)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_episodes_size16(self, seed):
        _drive_pair(seed, size=16, rounds=3)

    def test_fig11_example_identical(self):
        """The paper's worked example under both status modes."""
        requesters = [0, 3, 4, 5]
        free = {0: 1, 1: 1, 4: 1, 5: 1}
        inc = ClockedMultistageScheduler(
            OmegaTopology(8), dict(free), incremental_status=True)
        ref = ClockedMultistageScheduler(
            OmegaTopology(8), dict(free), incremental_status=False)
        assert _outcome_key(inc.run(requesters)) == _outcome_key(
            ref.run(requesters))
        assert _full_state(inc) == _full_state(ref)


class TestEventApi:
    def test_set_resources_validates(self):
        scheduler = ClockedMultistageScheduler(OmegaTopology(8), {0: 1})
        with pytest.raises(ConfigurationError):
            scheduler.set_resources(99, 1)
        with pytest.raises(ConfigurationError):
            scheduler.set_resources(0, -1)
        with pytest.raises(ConfigurationError):
            scheduler.set_resources(0, 1, resource_type="unknown-type")

    def test_adjust_accumulates(self):
        scheduler = ClockedMultistageScheduler(OmegaTopology(8), {0: 1})
        scheduler.adjust_resources(0, 2)
        assert scheduler.free_resources[0][0] == 3
        scheduler.adjust_resources(0, -3)
        assert scheduler.free_resources[0][0] == 0

    def test_replenished_port_is_allocatable(self):
        """A port refilled mid-episode must satisfy a later request."""
        scheduler = ClockedMultistageScheduler(OmegaTopology(8), {1: 1})
        first = scheduler.run([0])
        assert first.outcomes[0].allocated
        # The only stocked port is now empty; the next batch must block.
        second = scheduler.run([2])
        assert not second.outcomes[2].allocated
        scheduler.set_resources(5, 1)
        third = scheduler.run([2])
        assert third.outcomes[2].allocated
        assert third.outcomes[2].port == 5
