"""Unit tests for the trace monitor."""

from repro.sim import Trace


def test_disabled_by_default():
    trace = Trace()
    trace.record(1.0, "arrival", subject=7)
    assert len(trace) == 0


def test_records_when_enabled():
    trace = Trace(enabled=True)
    trace.record(1.0, "arrival", subject=7, queue=3)
    trace.record(2.0, "departure", subject=7)
    assert len(trace) == 2
    first = list(trace)[0]
    assert first.time == 1.0
    assert first.kind == "arrival"
    assert first.subject == 7
    assert first.detail == {"queue": 3}


def test_of_kind_filters():
    trace = Trace(enabled=True)
    trace.record(1.0, "a")
    trace.record(2.0, "b")
    trace.record(3.0, "a")
    assert [r.time for r in trace.of_kind("a")] == [1.0, 3.0]


def test_capacity_cap():
    trace = Trace(enabled=True, capacity=2)
    for i in range(5):
        trace.record(float(i), "event")
    assert len(trace) == 2


def test_clear():
    trace = Trace(enabled=True)
    trace.record(1.0, "x")
    trace.clear()
    assert len(trace) == 0
