"""Tests for the centralized scheduling baselines (E13)."""

import random

import pytest

from repro.core import (
    centralized_multistage,
    distributed_crossbar_delay,
    distributed_multistage_delay,
    priority_circuit_crossbar,
    tree_allocator,
)
from repro.networks import OmegaTopology


class TestPriorityCircuitCrossbar:
    def test_assignment_and_delay(self):
        outcome = priority_circuit_crossbar([0, 1, 2], [5, 6], processors=8,
                                            resources=8)
        assert outcome.assignment == {0: 5, 1: 6}
        assert outcome.unserved == [2]
        # 3 requests x (ceil(log2 8) + ceil(log2 64)) = 3 x (3 + 6).
        assert outcome.delay_units == 27

    def test_centralized_delay_grows_linearly_in_requests(self):
        short = priority_circuit_crossbar(list(range(4)), list(range(8)), 8, 8)
        long = priority_circuit_crossbar(list(range(8)), list(range(8)), 8, 8)
        assert long.delay_units == 2 * short.delay_units


class TestTreeAllocator:
    def test_linear_in_resource_count(self):
        outcome = tree_allocator([0, 1], [0, 1], resources=64)
        assert outcome.delay_units == 2 * 64

    def test_unserved_when_pool_exhausted(self):
        outcome = tree_allocator([0, 1, 2], [9], resources=16)
        assert outcome.assignment == {0: 9}
        assert outcome.unserved == [1, 2]


class TestCentralizedMultistage:
    def test_serves_all_when_possible(self):
        topology = OmegaTopology(8)
        outcome = centralized_multistage(topology, list(range(8)),
                                         list(range(8)),
                                         rng=random.Random(0))
        assert len(outcome.assignment) + len(outcome.unserved) == 8
        # Each attempt costs ceil(log2 8) = 3 gate-delay units.
        assert outcome.delay_units == 3 * outcome.attempts

    def test_retries_counted(self):
        topology = OmegaTopology(8)
        outcome = centralized_multistage(topology, list(range(8)),
                                         list(range(8)),
                                         rng=random.Random(1))
        # Blocking forces more attempts than requests on a full permutation.
        assert outcome.attempts >= 8

    def test_no_free_resources(self):
        topology = OmegaTopology(8)
        outcome = centralized_multistage(topology, [0, 1], [],
                                         rng=random.Random(0))
        assert outcome.assignment == {}
        assert outcome.unserved == [0, 1]


class TestScalingClaims:
    """Distributed scheduling beats centralized as N grows (Sections IV-V)."""

    def test_crossbar_crossover(self):
        """Distributed 4(p+m) vs centralized O(p log2 m): centralized wins
        only for tiny switches."""
        small_distributed = distributed_crossbar_delay(4, 4)
        small_centralized = priority_circuit_crossbar(
            list(range(4)), list(range(4)), 4, 4).delay_units
        assert small_centralized < small_distributed
        big_distributed = distributed_crossbar_delay(64, 64)
        big_centralized = priority_circuit_crossbar(
            list(range(64)), list(range(64)), 64, 64).delay_units
        assert big_distributed < big_centralized

    def test_multistage_distributed_is_logarithmic(self):
        assert distributed_multistage_delay(64) == pytest.approx(
            2 * distributed_multistage_delay(8), rel=0.5)
        ratios = [distributed_multistage_delay(2 ** k) / k for k in (3, 5, 7)]
        assert max(ratios) / min(ratios) < 1.5  # ~ c * log2 N

    def test_multistage_centralized_grows_much_faster(self):
        small = centralized_multistage(
            OmegaTopology(8), list(range(8)), list(range(8)),
            rng=random.Random(2)).delay_units
        large = centralized_multistage(
            OmegaTopology(64), list(range(64)), list(range(64)),
            rng=random.Random(2)).delay_units
        distributed_growth = (distributed_multistage_delay(64)
                              / distributed_multistage_delay(8))
        centralized_growth = large / small
        assert centralized_growth > 3 * distributed_growth
