"""Tests for the address-mapping baselines and the Section II example."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.networks import (
    OmegaTopology,
    max_conflict_free,
    permutation_passable,
    random_mapping_outcome,
    sequential_tag_routing,
)

GOOD_MAPPINGS = [
    [(0, 0), (1, 1), (2, 2)],
    [(0, 1), (1, 0), (2, 2)],
    [(0, 2), (1, 0), (2, 1)],
    [(0, 2), (1, 1), (2, 0)],
]
BAD_MAPPINGS = [
    [(0, 0), (1, 2), (2, 1)],
    [(0, 1), (1, 2), (2, 0)],
]


class TestSectionTwoExample:
    """The paper's 8x8 Omega mapping example, verbatim (E10)."""

    @pytest.mark.parametrize("mapping", GOOD_MAPPINGS)
    def test_good_mappings_route_fully(self, mapping):
        outcome = sequential_tag_routing(OmegaTopology(8), mapping)
        assert len(outcome.routed) == 3
        assert outcome.blocked == []

    @pytest.mark.parametrize("mapping", BAD_MAPPINGS)
    def test_bad_mappings_route_two_of_three(self, mapping):
        outcome = sequential_tag_routing(OmegaTopology(8), mapping)
        assert len(outcome.routed) == 2
        assert len(outcome.blocked) == 1

    def test_optimal_scheduler_recovers_all_three(self):
        best, mapping = max_conflict_free(OmegaTopology(8), [0, 1, 2], [0, 1, 2])
        assert best == 3
        assert sorted(mapping.keys()) == [0, 1, 2]
        assert sorted(mapping.values()) == [0, 1, 2]


class TestSequentialRouting:
    def test_empty_batch(self):
        outcome = sequential_tag_routing(OmegaTopology(8), [])
        assert outcome.routed == {}
        assert outcome.blocking_fraction == 0.0

    def test_duplicate_destination_blocks_second(self):
        outcome = sequential_tag_routing(OmegaTopology(8), [(0, 3), (1, 3)])
        assert outcome.routed == {0: 3}
        assert outcome.blocked == [1]
        assert outcome.blocking_fraction == 0.5


class TestMaxConflictFree:
    def test_single_pair_always_routes(self):
        best, mapping = max_conflict_free(OmegaTopology(8), [5], [2])
        assert best == 1
        assert mapping == {5: 2}

    def test_empty_inputs(self):
        best, mapping = max_conflict_free(OmegaTopology(8), [], [1, 2])
        assert best == 0
        assert mapping == {}

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_optimal_at_least_greedy(self, data):
        topology = OmegaTopology(8)
        sources = data.draw(st.lists(st.integers(0, 7), unique=True,
                                     min_size=1, max_size=4))
        destinations = data.draw(st.lists(st.integers(0, 7), unique=True,
                                          min_size=1, max_size=4))
        rng = random.Random(0)
        greedy = random_mapping_outcome(topology, list(sources),
                                        list(destinations), rng)
        best, mapping = max_conflict_free(topology, sources, destinations)
        assert best >= len(greedy.routed)
        # And the optimal mapping really is conflict-free.
        assert not topology.paths_conflict(list(mapping.items()))


class TestPermutations:
    def test_identity_passes(self):
        assert permutation_passable(OmegaTopology(8), list(range(8)))

    def test_known_blocking_permutation(self):
        # Swap pattern derived from the Section II example: extending
        # {(0,1),(1,2),(2,0)} to a full permutation keeps its conflict.
        permutation = [1, 2, 0, 3, 4, 5, 6, 7]
        assert not permutation_passable(OmegaTopology(8), permutation)

    def test_non_permutation_rejected(self):
        with pytest.raises(ConfigurationError):
            permutation_passable(OmegaTopology(8), [0] * 8)

    def test_most_random_permutations_block(self):
        """An 8x8 Omega passes only 2^(12) of 8! permutations; random ones
        overwhelmingly block (the basis of the ~0.3 figure)."""
        rng = random.Random(1)
        passed = 0
        for _ in range(200):
            permutation = list(range(8))
            rng.shuffle(permutation)
            if permutation_passable(OmegaTopology(8), permutation):
                passed += 1
        assert passed < 30
