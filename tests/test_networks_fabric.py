"""Tests for the multistage circuit fabric (settled-status model)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError
from repro.networks import (
    BaselineTopology,
    CubeTopology,
    MultistageFabric,
    OmegaTopology,
)


def omega_fabric(size=8):
    return MultistageFabric(OmegaTopology(size))


class TestBasicConnect:
    def test_connects_to_candidate(self):
        fabric = omega_fabric()
        connection = fabric.connect(0, {5})
        assert connection is not None
        assert connection.output_port == 5
        assert connection.hops == 3
        # Path holds one link per column.
        assert sorted(column for column, _ in connection.links) == [0, 1, 2, 3]

    def test_empty_candidates_refused(self):
        fabric = omega_fabric()
        assert fabric.connect(0, set()) is None

    def test_prefers_any_reachable_candidate(self):
        fabric = omega_fabric()
        connection = fabric.connect(3, {1, 6})
        assert connection.output_port in {1, 6}

    def test_release_frees_links(self):
        fabric = omega_fabric()
        connection = fabric.connect(0, {0})
        fabric.release(connection)
        assert fabric.connect(0, {0}) is not None

    def test_full_identity_permutation_routes(self):
        fabric = omega_fabric()
        for source in range(8):
            assert fabric.connect(source, {source}) is not None


class TestBlocking:
    def test_conflicting_pair_blocks(self):
        """The Section II counterexample: {(0,0),(1,2),(2,1)} cannot all route."""
        fabric = omega_fabric()
        assert fabric.connect(0, {0}) is not None
        assert fabric.connect(1, {2}) is not None
        assert fabric.connect(2, {1}) is None
        assert fabric.connect_blocked == 1

    def test_search_avoids_conflict_when_alternatives_exist(self):
        """Distributed search routes around: processor 2 takes another
        free port instead of failing on a specific one."""
        fabric = omega_fabric()
        fabric.connect(0, {0})
        fabric.connect(1, {2})
        connection = fabric.connect(2, {1, 3, 4, 5, 6, 7})
        assert connection is not None

    def test_blocked_connection_leaves_no_residue(self):
        fabric = omega_fabric()
        first = fabric.connect(0, {0})
        second = fabric.connect(1, {2})
        assert fabric.connect(2, {1}) is None
        fabric.release(first)
        fabric.release(second)
        # Now the previously blocked circuit must succeed.
        assert fabric.connect(2, {1}) is not None


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_connect_release_roundtrip_restores_state(self, data):
        size = data.draw(st.sampled_from([4, 8, 16]))
        topology_class = data.draw(st.sampled_from([OmegaTopology, CubeTopology, BaselineTopology]))
        fabric = MultistageFabric(topology_class(size))
        connections = []
        for source in data.draw(st.lists(
                st.integers(0, size - 1), unique=True, max_size=size)):
            candidates = data.draw(st.sets(
                st.integers(0, size - 1), min_size=1, max_size=size))
            connection = fabric.connect(source, candidates)
            if connection is not None:
                connections.append(connection)
        for connection in connections:
            fabric.release(connection)
        assert fabric._busy == set()
        assert all(not usage for usage in fabric._box_usage.values())

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_active_circuits_are_link_disjoint(self, data):
        size = 8
        fabric = omega_fabric(size)
        held = []
        for source in range(size):
            candidates = data.draw(st.sets(
                st.integers(0, size - 1), min_size=1, max_size=size))
            connection = fabric.connect(source, candidates)
            if connection is not None:
                held.append(connection)
        seen = set()
        for connection in held:
            assert not (connection.links & seen)
            seen |= connection.links

    def test_release_unknown_connection_rejected(self):
        fabric = omega_fabric()
        connection = fabric.connect(0, {0})
        fabric.release(connection)
        with pytest.raises(SchedulingError):
            fabric.release(connection)


class TestCubeFabric:
    def test_cube_behaves_like_a_multistage_fabric(self):
        fabric = MultistageFabric(CubeTopology(8))
        connection = fabric.connect(5, {3})
        assert connection is not None
        assert connection.hops == 3

    def test_cube_identity_permutation(self):
        fabric = MultistageFabric(CubeTopology(8))
        for source in range(8):
            assert fabric.connect(source, {source}) is not None
