"""Tests for replication methodology and the analytic blocking models."""

import random

import pytest

from repro.analysis.blocking_model import (
    delta_acceptance_probability,
    delta_blocking_curve,
    delta_blocking_probability,
    patel_output_rate,
    rsin_blocking_bound,
)
from repro.analysis.replication import (
    compare_with_replications,
    replicate_delay,
)
from repro.errors import AnalysisError, ConfigurationError
from repro.workload import Workload


class TestReplication:
    WORKLOAD = Workload(arrival_rate=0.04, transmission_rate=1.0,
                        service_rate=0.2)

    def test_estimate_matches_exact_chain(self):
        from repro.markov import solve_sbus
        estimate = replicate_delay("8/1x1x1 SBUS/4", self.WORKLOAD,
                                   horizon=30_000.0, warmup=3_000.0,
                                   target_relative_halfwidth=0.10,
                                   min_replications=5, max_replications=20)
        exact = solve_sbus(8 * 0.04, 1.0, 0.2, 4)
        assert abs(estimate.mean_delay - exact.mean_delay) \
            < 2.0 * estimate.ci_halfwidth + 0.02
        assert estimate.relative_halfwidth <= 0.10
        assert estimate.replications >= 5

    def test_unreachable_target_raises(self):
        with pytest.raises(AnalysisError):
            replicate_delay("8/1x1x1 SBUS/4", self.WORKLOAD,
                            horizon=600.0, warmup=100.0,
                            target_relative_halfwidth=0.005,
                            min_replications=2, max_replications=3)

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            replicate_delay("8/1x1x1 SBUS/4", self.WORKLOAD, 1000.0, 100.0,
                            target_relative_halfwidth=1.5)
        with pytest.raises(ConfigurationError):
            replicate_delay("8/1x1x1 SBUS/4", self.WORKLOAD, 1000.0, 100.0,
                            min_replications=1)

    def test_paired_comparison_resolves_a_real_ordering(self):
        """2 partitions beat 1 partition at this load; common random
        numbers should declare it significant with few replications."""
        workload = Workload(arrival_rate=0.02, transmission_rate=1.0,
                            service_rate=0.1)
        difference, halfwidth, significant = compare_with_replications(
            "16/1x1x1 SBUS/32", "16/2x1x1 SBUS/16", workload,
            horizon=20_000.0, warmup=2_000.0, replications=6)
        assert significant
        assert difference > 0  # one shared bus is slower

    def test_paired_comparison_validates_input(self):
        with pytest.raises(ConfigurationError):
            compare_with_replications("8/1x1x1 SBUS/4", "8/1x1x1 SBUS/4",
                                      self.WORKLOAD, 1000.0, 100.0,
                                      replications=1)


class TestPatelModel:
    def test_one_stage_recursion(self):
        assert patel_output_rate(1.0) == pytest.approx(0.75)
        assert patel_output_rate(0.0) == 0.0

    def test_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            patel_output_rate(1.2)

    def test_acceptance_decreases_with_size(self):
        values = [delta_acceptance_probability(size) for size in (2, 4, 8, 16)]
        assert values == sorted(values, reverse=True)
        assert values[0] == pytest.approx(0.75)

    def test_blocking_curve_monotone_in_load(self):
        curve = delta_blocking_curve(8, [0.2, 0.5, 1.0])
        assert curve == sorted(curve)

    def test_zero_load_never_blocks(self):
        assert delta_blocking_probability(8, 0.0) == 0.0

    def test_model_matches_measured_independent_destinations(self):
        """Patel's assumptions realized in the simulator: every processor
        requests an independent uniform destination.  Measured blocking
        tracks the recursion within ~10%."""
        from repro.networks import OmegaTopology, sequential_tag_routing
        rng = random.Random(3)
        topology = OmegaTopology(8)
        for request_probability in (1.0, 0.5):
            blocked = total = 0
            for _ in range(1500):
                pairs = [(source, rng.randrange(8)) for source in range(8)
                         if rng.random() < request_probability]
                if not pairs:
                    continue
                outcome = sequential_tag_routing(topology, pairs)
                blocked += len(outcome.blocked)
                total += len(pairs)
            model = delta_blocking_probability(8, request_probability)
            assert blocked / total == pytest.approx(model, rel=0.12)

    def test_rsin_bound_is_half_of_address_mapping(self):
        full = delta_blocking_probability(8, 1.0)
        assert rsin_blocking_bound(8, 1.0) == pytest.approx(full / 2)
        assert rsin_blocking_bound(8, 1.0, recovery=1.0) == 0.0
        with pytest.raises(ConfigurationError):
            rsin_blocking_bound(8, 1.0, recovery=1.5)
