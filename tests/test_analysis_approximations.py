"""Tests for the analytic delay approximations (Sections III and IV)."""

import math

import pytest

from repro.analysis import (
    crossbar_envelope_delay,
    crossbar_heavy_load_delay,
    crossbar_light_load_delay,
    saturation_intensity,
    sbus_delay,
    workload_at,
)
from repro.config import SystemConfig
from repro.errors import AnalysisError, ConfigurationError
from repro.workload import Workload


class TestSbusDelay:
    def test_partition_decomposition(self):
        """A partitioned bus system equals one partition's chain."""
        from repro.markov import solve_sbus
        workload = Workload(0.02, 1.0, 0.1)
        config = SystemConfig.parse("16/2x1x1 SBUS/16")
        estimate = sbus_delay(config, workload)
        reference = solve_sbus(8 * 0.02, 1.0, 0.1, 16)
        assert estimate.mean_delay == pytest.approx(reference.mean_delay)

    def test_infinite_resources_is_mm1(self):
        from repro.queueing import mm1_metrics
        workload = Workload(0.3, 1.0, 0.1)
        config = SystemConfig.parse("16/16x1x1 SBUS/inf")
        estimate = sbus_delay(config, workload)
        assert estimate.mean_delay == pytest.approx(
            mm1_metrics(0.3, 1.0).mean_waiting_time)
        assert estimate.model == "mm1-infinite-resources"

    def test_non_bus_rejected(self):
        with pytest.raises(ConfigurationError):
            sbus_delay(SystemConfig.parse("16/1x16x16 XBAR/2"),
                       Workload(0.1, 1.0, 1.0))

    def test_normalized_delay_helper(self):
        workload = Workload(0.02, 1.0, 0.1)
        estimate = sbus_delay(SystemConfig.parse("16/16x1x1 SBUS/4"), workload)
        assert estimate.normalized_delay(0.1) == pytest.approx(
            estimate.mean_delay * 0.1)


class TestCrossbarApproximations:
    CONFIG = SystemConfig.parse("16/1x16x16 XBAR/2")

    def test_light_load_close_to_simulation(self):
        from repro.core import simulate
        workload = workload_at(0.3, 0.1)
        light = crossbar_light_load_delay(self.CONFIG, workload)
        simulated = simulate(self.CONFIG, workload, horizon=40_000.0,
                             warmup=4_000.0, seed=6)
        assert light.mean_delay == pytest.approx(
            simulated.mean_queueing_delay, rel=0.25, abs=0.02)

    def test_heavy_load_partitions_processors_over_buses(self):
        config = SystemConfig.parse("16/1x16x4 XBAR/8")
        # p=16 > m=4: heavy load means 4 processors per bus.
        workload = Workload(0.05, 1.0, 0.5)
        heavy = crossbar_heavy_load_delay(config, workload)
        from repro.markov import solve_sbus
        reference = solve_sbus(4 * 0.05, 1.0, 0.5, 8)
        assert heavy.mean_delay == pytest.approx(reference.mean_delay)

    def test_heavy_load_partitions_buses_over_processors(self):
        config = SystemConfig.parse("4/1x4x8 XBAR/2")
        # m=8 > p=4: each processor owns 2 buses and 4 resources.
        workload = Workload(0.1, 1.0, 0.5)
        heavy = crossbar_heavy_load_delay(config, workload)
        from repro.markov import solve_sbus
        reference = solve_sbus(0.1, 1.0, 0.5, 4)
        assert heavy.mean_delay == pytest.approx(reference.mean_delay)

    def test_envelope_is_max_of_regimes(self):
        workload = workload_at(0.5, 0.5)
        light = crossbar_light_load_delay(self.CONFIG, workload).mean_delay
        heavy = crossbar_heavy_load_delay(self.CONFIG, workload).mean_delay
        envelope = crossbar_envelope_delay(self.CONFIG, workload).mean_delay
        assert envelope == pytest.approx(max(light, heavy))

    def test_bus_config_rejected(self):
        with pytest.raises(ConfigurationError):
            crossbar_light_load_delay(SystemConfig.parse("16/16x1x1 SBUS/2"),
                                      Workload(0.1, 1.0, 1.0))


class TestSaturation:
    def test_private_bus_resource_bound(self):
        """16 private buses with 2 resources at ratio 0.1 saturate at
        rho = 1.2 (the crossing behaviour backdrop of Fig. 4)."""
        config = SystemConfig.parse("16/16x1x1 SBUS/2")
        assert saturation_intensity(config, 0.1) == pytest.approx(1.2)

    def test_single_shared_bus_bus_bound(self):
        """One bus for 16 processors saturates when 16 lambda = mu_n:
        rho = 0.375 at ratio 0.1."""
        config = SystemConfig.parse("16/1x1x1 SBUS/32")
        assert saturation_intensity(config, 0.1) == pytest.approx(0.375)

    def test_crossbar_resource_bound_at_small_ratio(self):
        config = SystemConfig.parse("16/1x16x16 XBAR/2")
        # 32 resources x 0.1 = 3.2 total; per-processor 0.2;
        # rho = 16*0.2*(1/16 + 1/3.2) = 1.2.
        assert saturation_intensity(config, 0.1) == pytest.approx(1.2)

    def test_infinite_resources_bus_bound(self):
        config = SystemConfig.parse("16/16x1x1 SBUS/inf")
        # Private bus rate 1 per processor: lambda_max = 1, rho at axis:
        # 16*1*(1/16 + 1/3.2) = 6.0 for ratio 0.1.
        assert saturation_intensity(config, 0.1) == pytest.approx(6.0)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            saturation_intensity(SystemConfig.parse("16/16x1x1 SBUS/2"), 0.0)

    def test_more_partitions_saturate_later_at_small_ratio(self):
        ratios = [saturation_intensity(SystemConfig.parse(text), 0.1)
                  for text in ("16/1x1x1 SBUS/32", "16/2x1x1 SBUS/16",
                               "16/8x1x1 SBUS/4", "16/16x1x1 SBUS/2")]
        assert ratios == sorted(ratios)
