"""Tests for the task life-cycle record and the metrics collector."""

import math

import pytest

from repro.core import MetricsCollector, Task, summarize


class TestTask:
    def test_delays_none_until_events_happen(self):
        task = Task(task_id=1, processor=0, created=10.0)
        assert task.queueing_delay is None
        assert task.response_time is None
        assert task.transmission_time is None

    def test_life_cycle_timings(self):
        task = Task(task_id=1, processor=0, created=10.0)
        task.transmission_started = 12.5
        task.transmission_finished = 14.0
        task.service_finished = 20.0
        assert task.queueing_delay == 2.5
        assert task.transmission_time == 1.5
        assert task.response_time == 10.0


class TestMetricsCollector:
    def make_history(self, collector):
        collector.task_generated(0.0)
        collector.transmission_started(2.0, waited=2.0)
        collector.transmission_finished(3.0)
        collector.service_finished(8.0, response_time=8.0)

    def test_counts(self):
        collector = MetricsCollector(service_rate=0.2)
        self.make_history(collector)
        assert collector.generated_tasks == 1
        assert collector.completed_tasks == 1
        assert collector.queueing_delay.mean == 2.0
        assert collector.response_time.mean == 8.0

    def test_time_weighted_signals(self):
        collector = MetricsCollector(service_rate=0.2)
        self.make_history(collector)
        # Queue occupied 0..2, bus 2..3, resource 3..8.
        assert collector.queue_length.time_average(10.0) == pytest.approx(0.2)
        assert collector.busy_buses.time_average(10.0) == pytest.approx(0.1)
        assert collector.busy_resources.time_average(10.0) == pytest.approx(0.5)

    def test_reset_discards_history(self):
        collector = MetricsCollector(service_rate=0.2)
        self.make_history(collector)
        collector.reset(10.0)
        assert collector.completed_tasks == 0
        assert math.isnan(collector.queueing_delay.mean)
        assert collector.queue_length.time_average(20.0) == pytest.approx(0.0)

    def test_summarize(self):
        collector = MetricsCollector(service_rate=0.2)
        self.make_history(collector)
        result = summarize(collector, now=10.0, total_buses=2,
                           total_resources=4, blocking_fraction=0.25)
        assert result.mean_queueing_delay == 2.0
        assert result.normalized_delay == pytest.approx(0.4)
        assert result.bus_utilization == pytest.approx(0.05)
        assert result.resource_utilization == pytest.approx(0.125)
        assert result.network_blocking_fraction == 0.25
        assert result.completed_tasks == 1
        assert "mu_s*d" in str(result)

    def test_summarize_infinite_resources(self):
        collector = MetricsCollector(service_rate=0.2)
        result = summarize(collector, now=10.0, total_buses=1,
                           total_resources=math.inf, blocking_fraction=0.0)
        assert result.resource_utilization == 0.0
