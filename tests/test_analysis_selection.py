"""Tests for the Table II selection machinery."""

import math

import pytest

from repro.analysis import (
    CostModel,
    CostRegime,
    NetworkClass,
    classify,
    evaluate_candidates,
    qualitative_recommendation,
    recommend,
)
from repro.config import SystemConfig
from repro.errors import AnalysisError, ConfigurationError, UnstableSystemError
from repro.workload import Workload


class TestClassification:
    @pytest.mark.parametrize("triplet,expected", [
        ("16/16x1x1 SBUS/4", NetworkClass.PRIVATE_BUS),
        ("16/1x1x1 SBUS/32", NetworkClass.PRIVATE_BUS),
        ("16/1x16x32 XBAR/1", NetworkClass.SINGLE_CROSSBAR),
        ("16/1x16x16 OMEGA/2", NetworkClass.SINGLE_MULTISTAGE),
        ("16/1x16x16 CUBE/2", NetworkClass.SINGLE_MULTISTAGE),
        ("16/4x4x4 XBAR/2", NetworkClass.PARTITIONED_CROSSBAR),
        ("16/2x8x8 OMEGA/3", NetworkClass.PARTITIONED_MULTISTAGE),
    ])
    def test_classify(self, triplet, expected):
        assert classify(SystemConfig.parse(triplet)) is expected


class TestQualitativeTable:
    def test_all_five_rows(self):
        table = {
            (CostRegime.NETWORK_CHEAP, 0.1): NetworkClass.SINGLE_MULTISTAGE,
            (CostRegime.NETWORK_CHEAP, 4.0): NetworkClass.SINGLE_CROSSBAR,
            (CostRegime.COMPARABLE, 0.1): NetworkClass.PARTITIONED_MULTISTAGE,
            (CostRegime.COMPARABLE, 4.0): NetworkClass.PARTITIONED_CROSSBAR,
            (CostRegime.NETWORK_EXPENSIVE, 0.1): NetworkClass.PRIVATE_BUS,
            (CostRegime.NETWORK_EXPENSIVE, 4.0): NetworkClass.PRIVATE_BUS,
        }
        for (regime, ratio), expected in table.items():
            assert qualitative_recommendation(regime, ratio) is expected

    def test_bad_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            qualitative_recommendation(CostRegime.COMPARABLE, -1.0)


class TestCostModel:
    def test_crossbar_is_crosspoints(self):
        model = CostModel(resource_unit_cost=1.0)
        assert model.network_cost(
            SystemConfig.parse("16/1x16x32 XBAR/1")) == 512
        assert model.network_cost(
            SystemConfig.parse("16/4x4x4 XBAR/2")) == 64

    def test_omega_is_boxes(self):
        model = CostModel(resource_unit_cost=1.0, box_cost=4.0)
        # (16/2) * log2(16) = 32 boxes.
        assert model.network_cost(
            SystemConfig.parse("16/1x16x16 OMEGA/2")) == 128

    def test_multistage_cheaper_than_crossbar_at_scale(self):
        model = CostModel(resource_unit_cost=1.0)
        omega = model.network_cost(SystemConfig.parse("16/1x16x16 OMEGA/2"))
        crossbar = model.network_cost(SystemConfig.parse("16/1x16x16 XBAR/2"))
        assert omega < crossbar

    def test_bus_taps(self):
        model = CostModel(resource_unit_cost=1.0, bus_tap_cost=0.5)
        # 16 buses x (1 processor + 2 resources) taps x 0.5.
        assert model.network_cost(
            SystemConfig.parse("16/16x1x1 SBUS/2")) == 24

    def test_total_cost_includes_resources(self):
        model = CostModel(resource_unit_cost=10.0)
        config = SystemConfig.parse("16/1x16x16 OMEGA/2")
        assert model.total_cost(config) == model.network_cost(config) + 320

    def test_infinite_resources_cost_infinite(self):
        model = CostModel(resource_unit_cost=1.0)
        assert model.resource_cost(
            SystemConfig.parse("16/16x1x1 SBUS/inf")) == math.inf


class TestRecommend:
    WORKLOAD = Workload(0.02, 1.0, 0.1)

    @staticmethod
    def fake_evaluator(delays):
        def evaluate(config, workload):
            return delays[str(config)]
        return evaluate

    def test_cheapest_wins_on_tie(self):
        candidates = [SystemConfig.parse("16/1x16x16 OMEGA/2"),
                      SystemConfig.parse("16/1x16x16 XBAR/2")]
        delays = {"16/1x16x16 OMEGA/2": 1.0, "16/1x16x16 XBAR/2": 0.98}
        recommendation = recommend(
            candidates, self.WORKLOAD, CostModel(resource_unit_cost=1.0),
            evaluator=self.fake_evaluator(delays))
        assert recommendation.winner.config.network_type == "OMEGA"

    def test_decisively_faster_wins_despite_cost(self):
        candidates = [SystemConfig.parse("16/1x16x16 OMEGA/2"),
                      SystemConfig.parse("16/1x16x16 XBAR/2")]
        delays = {"16/1x16x16 OMEGA/2": 2.0, "16/1x16x16 XBAR/2": 1.0}
        recommendation = recommend(
            candidates, self.WORKLOAD, CostModel(resource_unit_cost=1.0),
            budget_factor=2.0,  # both candidates affordable
            evaluator=self.fake_evaluator(delays))
        assert recommendation.winner.config.network_type == "XBAR"

    def test_budget_excludes_expensive_candidates(self):
        candidates = [SystemConfig.parse("16/1x16x16 OMEGA/2"),
                      SystemConfig.parse("16/1x16x32 XBAR/1")]
        delays = {"16/1x16x16 OMEGA/2": 5.0, "16/1x16x32 XBAR/1": 0.1}
        recommendation = recommend(
            candidates, self.WORKLOAD,
            CostModel(resource_unit_cost=100.0),  # resources dominate; both affordable
            budget_factor=1.01,
            evaluator=self.fake_evaluator(delays))
        # With resources at 100/unit both cost 3200 + network; XBAR's extra
        # 384 crosspoints exceed the 1% budget slack, so OMEGA wins despite
        # being slower.
        assert recommendation.winner.config.network_type == "OMEGA"

    def test_unstable_candidates_skipped(self):
        def evaluator(config, workload):
            if config.network_type == "OMEGA":
                raise UnstableSystemError(1.5)
            return 1.0
        candidates = [SystemConfig.parse("16/1x16x16 OMEGA/2"),
                      SystemConfig.parse("16/1x16x16 XBAR/2")]
        recommendation = recommend(
            candidates, self.WORKLOAD, CostModel(resource_unit_cost=1.0),
            evaluator=evaluator)
        assert recommendation.winner.config.network_type == "XBAR"

    def test_all_unstable_raises(self):
        def evaluator(config, workload):
            raise UnstableSystemError(2.0)
        with pytest.raises(UnstableSystemError):
            recommend([SystemConfig.parse("16/1x16x16 XBAR/2")],
                      self.WORKLOAD, CostModel(resource_unit_cost=1.0),
                      evaluator=evaluator)

    def test_no_candidates_rejected(self):
        with pytest.raises(AnalysisError):
            recommend([], self.WORKLOAD, CostModel(resource_unit_cost=1.0))

    def test_evaluate_candidates_marks_unstable_infinite(self):
        def evaluator(config, workload):
            raise UnstableSystemError(2.0)
        evaluations = evaluate_candidates(
            [SystemConfig.parse("16/1x16x16 XBAR/2")], self.WORKLOAD,
            CostModel(resource_unit_cost=1.0), evaluator)
        assert math.isinf(evaluations[0].mean_delay)
