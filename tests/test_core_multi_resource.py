"""Tests for the multi-resource / deadlock extension (Section VII)."""

import pytest

from repro.config import SystemConfig
from repro.core.multi_resource import (
    STRATEGIES,
    MultiResourceSystem,
    simulate_multi_resource,
)
from repro.errors import ConfigurationError, SimulationError
from repro.workload import Workload

CONFIG = "8/1x8x4 XBAR/2"   # 8 fungible resources
MODERATE = Workload(arrival_rate=0.03, transmission_rate=1.0,
                    service_rate=0.15)


def run(strategy, k=3, workload=MODERATE, horizon=20_000.0, seed=2):
    system = MultiResourceSystem(SystemConfig.parse(CONFIG), workload,
                                 resources_needed=k, strategy=strategy,
                                 seed=seed)
    result = system.run(horizon=horizon, warmup=horizon * 0.1)
    return system, result


class TestConstruction:
    def test_only_single_crossbars(self):
        with pytest.raises(ConfigurationError):
            MultiResourceSystem(SystemConfig.parse("8/1x8x8 OMEGA/1"),
                                MODERATE)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiResourceSystem(SystemConfig.parse(CONFIG), MODERATE,
                                strategy="optimistic")

    def test_request_size_bounds(self):
        with pytest.raises(ConfigurationError):
            MultiResourceSystem(SystemConfig.parse(CONFIG), MODERATE,
                                resources_needed=0)
        with pytest.raises(ConfigurationError):
            MultiResourceSystem(SystemConfig.parse(CONFIG), MODERATE,
                                resources_needed=9)

    def test_single_run_only(self):
        system = MultiResourceSystem(SystemConfig.parse(CONFIG), MODERATE)
        system.run(horizon=100.0)
        with pytest.raises(SimulationError):
            system.run(horizon=100.0)


class TestSingleResourceDegenerate:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_k1_never_deadlocks_and_conserves_work(self, strategy):
        system, result = run(strategy, k=1, horizon=30_000.0)
        assert system.deadlocks_detected == 0
        offered = 8 * MODERATE.arrival_rate
        rate = result.completed_tasks / (result.simulated_time - 3_000.0)
        assert rate == pytest.approx(offered, rel=0.06)

    def test_k1_strategies_agree(self):
        delays = [run(strategy, k=1)[1].mean_queueing_delay
                  for strategy in ("atomic", "claimed")]
        assert delays[0] == pytest.approx(delays[1], rel=0.2, abs=0.02)


class TestDeadlockBehaviour:
    def test_atomic_never_deadlocks(self):
        system, _result = run("atomic", k=3)
        assert system.deadlocks_detected == 0
        assert system.aborts == 0

    def test_claimed_never_deadlocks(self):
        """Banker-style admission control is deadlock-free by construction
        (the system raises if the invariant is ever violated)."""
        system, _result = run("claimed", k=3)
        assert system.deadlocks_detected == 0

    def test_uncoordinated_race_deadlocks(self):
        """The distributed capture race produces real counting deadlocks,
        resolved by aborting the youngest holder."""
        system, _result = run("incremental", k=3)
        assert system.deadlocks_detected > 0
        assert system.aborts == system.deadlocks_detected

    def test_deadlock_thrashing_costs_throughput(self):
        _inc_system, incremental = run("incremental", k=3)
        _atomic_system, atomic = run("atomic", k=3)
        assert incremental.completed_tasks < 0.8 * atomic.completed_tasks

    def test_atomic_stable_at_moderate_load(self):
        _system, result = run("atomic", k=3, horizon=30_000.0)
        offered = 8 * MODERATE.arrival_rate
        rate = result.completed_tasks / (result.simulated_time - 3_000.0)
        assert rate == pytest.approx(offered, rel=0.06)


class TestAccounting:
    def test_resources_conserved(self):
        system, _result = run("incremental", k=2)
        held = sum(len(h.held) for h in system.waiting_holders)
        # Every resource is free, held by a waiter, or attached to an
        # in-flight (transmitting/serving) task.
        in_flight = (system.transmitting_count + system.serving_count) * 0  # held sets live on entries
        total = int(system.config.total_resources)
        assert len(system.free) + held <= total

    def test_holder_cap_formula(self):
        system = MultiResourceSystem(SystemConfig.parse(CONFIG), MODERATE,
                                     resources_needed=3, strategy="claimed")
        # (8 - 1) // (3 - 1) = 3 concurrent partial holders.
        assert system._holder_cap() == 3
        loose = MultiResourceSystem(SystemConfig.parse(CONFIG), MODERATE,
                                    resources_needed=1, strategy="claimed")
        assert loose._holder_cap() == float("inf")
