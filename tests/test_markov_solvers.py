"""Tests for the three SBUS solvers and their degenerate-case agreement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError, UnstableSystemError
from repro.markov import (
    SbusChain,
    check_stability,
    solve_matrix_geometric,
    solve_sbus,
    solve_stage_recursion,
    solve_truncated_direct,
)
from repro.queueing import mm1_metrics, mmc_metrics


class TestDegenerateCases:
    def test_fast_transmission_reduces_to_mmr(self):
        """mu_n >> mu_s: the bus vanishes; the system is M/M/r (Section III)."""
        solution = solve_sbus(arrival_rate=2.0, transmission_rate=1e7,
                              service_rate=1.0, resources=4)
        reference = mmc_metrics(2.0, 1.0, servers=4)
        assert solution.mean_delay == pytest.approx(
            reference.mean_waiting_time, rel=1e-4)
        assert solution.mean_busy_resources == pytest.approx(2.0, rel=1e-4)

    def test_fast_service_reduces_to_mm1(self):
        """mu_s >> mu_n: resources vanish; the bus is an M/M/1 server."""
        solution = solve_sbus(arrival_rate=0.6, transmission_rate=1.0,
                              service_rate=1e7, resources=3)
        reference = mm1_metrics(0.6, 1.0)
        assert solution.mean_delay == pytest.approx(
            reference.mean_waiting_time, rel=1e-4)
        assert solution.bus_utilization == pytest.approx(0.6, rel=1e-4)

    def test_single_resource_is_tandem_bottleneck(self):
        """r = 1 saturates at the harmonic combination of the two rates."""
        chain = SbusChain(arrival_rate=0.49, transmission_rate=1.0,
                          service_rate=1.0, resources=1)
        solution = solve_matrix_geometric(chain)
        assert solution.mean_delay > 0
        unstable = SbusChain(arrival_rate=0.51, transmission_rate=1.0,
                             service_rate=1.0, resources=1)
        with pytest.raises(UnstableSystemError):
            check_stability(unstable)


def bus_capacity(ratio: float, resources: int) -> float:
    """Maximum sustainable arrival rate of the stall-coupled bus.

    Lower than min(mu_n, r mu_s) because the bus idles whenever every
    resource is busy; obtained from the QBD drift of the repeating levels.
    """
    from repro.markov.qbd import drift_condition
    probe = SbusChain(arrival_rate=1.0, transmission_rate=1.0,
                      service_rate=ratio, resources=resources)
    drift = drift_condition(*probe.qbd_blocks())
    return 1.0 - drift


class TestSolverAgreement:
    """The paper reports 4-digit agreement between its two methods (E14)."""

    @pytest.mark.parametrize("load,ratio,resources", [
        (0.5, 0.1, 2),
        (0.6, 0.5, 3),
        (0.6, 1.0, 4),
        (0.6, 2.0, 2),
    ])
    def test_all_three_methods_agree(self, load, ratio, resources):
        kwargs = dict(arrival_rate=load * bus_capacity(ratio, resources),
                      transmission_rate=1.0, service_rate=ratio,
                      resources=resources)
        exact = solve_sbus(method="matrix-geometric", **kwargs)
        direct = solve_sbus(method="truncated-direct", **kwargs)
        stages = solve_sbus(method="stage-recursion", **kwargs)
        assert direct.mean_delay == pytest.approx(exact.mean_delay, rel=1e-6)
        # The stage recursion trades precision for fidelity to the paper's
        # procedure; at these loads it keeps 2-3 digits.
        assert stages.mean_delay == pytest.approx(exact.mean_delay, rel=1e-2)

    @pytest.mark.parametrize("ratio,resources", [(0.5, 3), (1.0, 4), (2.0, 2)])
    def test_four_digit_agreement_at_moderate_load(self, ratio, resources):
        """The paper's 4-digit claim, reproduced at moderate utilization."""
        kwargs = dict(arrival_rate=0.35 * bus_capacity(ratio, resources),
                      transmission_rate=1.0, service_rate=ratio,
                      resources=resources)
        exact = solve_sbus(method="matrix-geometric", **kwargs)
        stages = solve_sbus(method="stage-recursion", **kwargs)
        assert stages.mean_delay == pytest.approx(exact.mean_delay, rel=1e-4)

    @settings(max_examples=15, deadline=None)
    @given(
        load=st.floats(min_value=0.1, max_value=0.8),
        ratio=st.floats(min_value=0.2, max_value=2.0),
        resources=st.integers(min_value=1, max_value=5),
    )
    def test_exact_vs_direct_property(self, load, ratio, resources):
        kwargs = dict(arrival_rate=load * bus_capacity(ratio, resources),
                      transmission_rate=1.0, service_rate=ratio,
                      resources=resources)
        exact = solve_sbus(method="matrix-geometric", **kwargs)
        direct = solve_sbus(method="truncated-direct", **kwargs)
        assert direct.mean_delay == pytest.approx(exact.mean_delay, rel=1e-5)


class TestSolutionInvariants:
    def test_utilizations_in_unit_interval(self):
        solution = solve_sbus(1.0, 1.5, 0.7, 3)
        assert 0.0 <= solution.bus_utilization <= 1.0
        assert 0.0 <= solution.resource_utilization <= 1.0

    def test_throughput_conservation(self):
        """Bus throughput mu_n * P(busy) must equal the arrival rate."""
        solution = solve_sbus(0.9, 2.0, 0.5, 3)
        assert solution.bus_utilization * 2.0 == pytest.approx(0.9, rel=1e-8)

    def test_resource_flow_conservation(self):
        """Resource throughput mu_s * E[s] must equal the arrival rate."""
        solution = solve_sbus(0.9, 2.0, 0.5, 3)
        assert solution.mean_busy_resources * 0.5 == pytest.approx(0.9, rel=1e-8)

    def test_normalized_delay(self):
        solution = solve_sbus(0.9, 2.0, 0.5, 3)
        assert solution.normalized_delay == pytest.approx(
            solution.mean_delay * 0.5)

    def test_delay_increases_with_load(self):
        capacity = bus_capacity(0.5, 2)
        delays = [solve_sbus(fraction * capacity, 1.0, 0.5, 2).mean_delay
                  for fraction in (0.2, 0.4, 0.6, 0.8)]
        assert delays == sorted(delays)
        assert delays[0] < delays[-1]

    def test_more_resources_reduce_delay(self):
        arrival = 0.7 * bus_capacity(0.3, 3)
        few = solve_sbus(arrival, 1.0, 0.3, 3).mean_delay
        many = solve_sbus(arrival, 1.0, 0.3, 6).mean_delay
        assert many < few


class TestErrorHandling:
    def test_unknown_method_rejected(self):
        with pytest.raises(AnalysisError):
            solve_sbus(1.0, 1.0, 1.0, 2, method="magic")

    def test_unstable_rejected_by_all_methods(self):
        for method in ("matrix-geometric", "truncated-direct", "stage-recursion"):
            with pytest.raises(UnstableSystemError):
                solve_sbus(10.0, 1.0, 1.0, 2, method=method)

    def test_truncated_fixed_level(self):
        solution = solve_truncated_direct(
            SbusChain(0.5, 1.0, 0.5, 2), max_level=64)
        assert solution.levels_used == 64

    def test_stage_recursion_needs_full_elementary_stage(self):
        with pytest.raises(AnalysisError):
            solve_stage_recursion(SbusChain(0.5, 1.0, 0.5, 4), initial_stage=2)
