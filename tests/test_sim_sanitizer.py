"""Tests for the simultaneous-event race detector and run determinism."""

import pytest

from repro.config import SystemConfig
from repro.core import simulate
from repro.errors import SimulationError
from repro.sim import (
    Environment,
    RaceConditionDetected,
    TieSanitizer,
    metric_digest,
    state_digest,
)
from repro.workload.arrivals import Workload


def _tied_callbacks(env, state, effects, delay=5.0):
    """Schedule one same-timestamp event per effect, FIFO in given order."""
    for effect in effects:
        timer = env.timeout(delay)
        timer.add_callback(lambda _event, fn=effect: fn(state))


class TestRaceDetector:
    def test_order_dependent_tie_is_reported(self):
        state = {"x": 0}
        sanitizer = TieSanitizer.for_mapping(state, seed=7)
        env = Environment(sanitizer=sanitizer)
        # Last writer wins: the committed value depends on pop order.
        _tied_callbacks(env, state, [
            lambda s: s.__setitem__("x", 1),
            lambda s: s.__setitem__("x", 2),
        ])
        env.run()
        assert len(sanitizer.findings) == 1
        finding = sanitizer.findings[0]
        assert finding.time == 5.0
        assert finding.events == 2
        assert finding.permutation == (1, 0)
        assert finding.baseline_digest != finding.permuted_digest
        assert "order-dependent tie at t=5" in str(finding)
        assert not sanitizer.clean
        # The committed outcome is the FIFO order's: second writer wins.
        assert state["x"] == 2

    def test_order_independent_tie_stays_silent(self):
        state = {"x": 0}
        sanitizer = TieSanitizer.for_mapping(state, seed=7)
        env = Environment(sanitizer=sanitizer)
        # Commutative increments: any pop order gives the same state.
        _tied_callbacks(env, state, [
            lambda s: s.__setitem__("x", s["x"] + 1),
            lambda s: s.__setitem__("x", s["x"] + 10),
        ])
        env.run()
        assert sanitizer.findings == []
        assert sanitizer.clean
        assert sanitizer.ties_examined == 1
        assert sanitizer.largest_tie == 2
        assert state["x"] == 11

    def test_raise_mode_fails_fast(self):
        state = {"x": 0}
        sanitizer = TieSanitizer.for_mapping(state, seed=7, on_race="raise")
        env = Environment(sanitizer=sanitizer)
        _tied_callbacks(env, state, [
            lambda s: s.__setitem__("x", 1),
            lambda s: s.__setitem__("x", 2),
        ])
        with pytest.raises(RaceConditionDetected) as excinfo:
            env.run()
        assert excinfo.value.finding.events == 2

    def test_three_way_tie_tries_multiple_permutations(self):
        state = {"trace": ()}
        sanitizer = TieSanitizer.for_mapping(state, seed=3, permutations=5)
        env = Environment(sanitizer=sanitizer)
        _tied_callbacks(env, state, [
            lambda s, tag=tag: s.__setitem__("trace", s["trace"] + (tag,))
            for tag in "abc"
        ])
        env.run()
        # The appended order differs under every non-FIFO permutation.
        assert 1 <= len(sanitizer.findings) <= 5
        assert state["trace"] == ("a", "b", "c")

    def test_sanitized_run_commits_fifo_outcome(self):
        """A sanitized run must be event-for-event identical to a plain run."""
        def run(with_sanitizer):
            state = {"x": 0, "log": ()}
            sanitizer = (TieSanitizer.for_mapping(state, seed=1)
                         if with_sanitizer else None)
            env = Environment(sanitizer=sanitizer)

            def first(s):
                s["log"] += ("first",)
                follow = env.timeout(1.0)
                follow.add_callback(
                    lambda _e: s.__setitem__("log", s["log"] + ("follow",)))

            def second(s):
                s["log"] += ("second",)
                s["x"] = 1

            _tied_callbacks(env, state, [first, second])
            env.run()
            return state

        assert run(True) == run(False)

    def test_ties_across_priorities_are_not_permuted(self):
        """Priority classes order deterministically; only FIFO ties race."""
        from repro.sim import PRIORITY_URGENT

        state = {"x": 0}
        sanitizer = TieSanitizer.for_mapping(state, seed=0)
        env = Environment(sanitizer=sanitizer)
        urgent = env.timeout(5.0, priority=PRIORITY_URGENT)
        urgent.add_callback(lambda _e: state.__setitem__("x", 1))
        normal = env.timeout(5.0)
        normal.add_callback(lambda _e: state.__setitem__("x", 2))
        env.run()
        assert sanitizer.findings == []
        assert sanitizer.ties_examined == 0
        assert state["x"] == 2

    def test_sanitizer_rejects_bad_configuration(self):
        with pytest.raises(SimulationError):
            TieSanitizer(snapshot=dict, restore=lambda s: None,
                         digest=lambda: "", permutations=0)
        with pytest.raises(SimulationError):
            TieSanitizer(snapshot=dict, restore=lambda s: None,
                         digest=lambda: "", on_race="explode")

    def test_summary_line(self):
        state = {}
        sanitizer = TieSanitizer.for_mapping(state)
        assert "0 tie(s)" in sanitizer.summary()
        assert "clean" in sanitizer.summary()


class TestStateDigest:
    def test_digest_is_stable_and_discriminating(self):
        assert state_digest({"a": 1}) == state_digest({"a": 1})
        assert state_digest({"a": 1}) != state_digest({"a": 2})
        assert state_digest(1, 2) != state_digest(12)


class TestRunDeterminism:
    """Two identical seeded runs of each fabric give identical digests."""

    WORKLOAD = Workload(arrival_rate=0.05, transmission_rate=1.0,
                        service_rate=0.1)

    @pytest.mark.parametrize("triplet", [
        "8/8x1x1 SBUS/2",
        "8/1x8x8 XBAR/1",
        "8/1x8x8 OMEGA/2",
    ])
    def test_identical_seeded_runs_digest_equal(self, triplet):
        config = SystemConfig.parse(triplet)

        def digest():
            result = simulate(config, self.WORKLOAD, horizon=2_000.0,
                              warmup=200.0, seed=11)
            return metric_digest(result)

        assert digest() == digest()

    def test_different_seeds_differ(self):
        config = SystemConfig.parse("8/1x8x8 XBAR/1")
        one = metric_digest(simulate(config, self.WORKLOAD,
                                     horizon=2_000.0, warmup=200.0, seed=1))
        two = metric_digest(simulate(config, self.WORKLOAD,
                                     horizon=2_000.0, warmup=200.0, seed=2))
        assert one != two
