"""Lockstep tests for the batched multistage router and bus matcher.

The batched fabric kernels' single contract is equivalence with the
scalar fabrics they replace: :class:`BatchedMultistageRouter` must grant,
route, and release exactly like :class:`MultistageFabric` on every wiring
the grammar admits, and :func:`match_bus_batch` must reproduce the
single-bus broadcast closed form (which is also the ``m = 1`` degenerate
of the crossbar rank pairing).  The hypothesis drivers below advance K
scalar fabrics and one K-row router through long random connect/release
interleavings and compare every grant and output port along the way.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError
from repro.networks.batched_crossbar import match_pairs_batch
from repro.networks.batched_omega import BatchedMultistageRouter
from repro.networks.batched_sbus import match_bus_batch
from repro.networks.omega import MultistageFabric
from repro.networks.topology import make_topology

KINDS = ("OMEGA", "CUBE", "BASELINE")


def _connect_rows(data, router, fabrics, held, q, step):
    """One connect attempt from input ``q`` on a random subset of rows."""
    size = router.topology.size
    reps, masks = [], []
    for k in range(len(fabrics)):
        if q in held[k]:
            continue  # the scalar fabric forbids double connects
        if not data.draw(st.booleans(), label=f"try{step}-{k}"):
            continue
        mask = np.array([data.draw(st.integers(0, 1),
                                   label=f"acc{step}-{k}-{port}")
                         for port in range(size)], dtype=np.uint8)
        reps.append(k)
        masks.append(mask)
    if not reps:
        return
    reps_array = np.array(reps, dtype=np.int64)
    granted, out_ports = router.connect_batch(reps_array, 0, q,
                                              np.stack(masks))
    cursor = 0
    for position, k in enumerate(reps):
        candidates = [port for port in range(size) if masks[position][port]]
        connection = fabrics[k].connect(q, candidates)
        if connection is None:
            assert not granted[position], f"row {k} over-granted at {q}"
        else:
            assert granted[position], f"row {k} under-granted at {q}"
            assert int(out_ports[cursor]) == connection.output_port
            held[k][q] = connection
        cursor += granted[position]


def _release_rows(data, router, fabrics, held, step):
    """Release one held circuit per row, for a random subset of rows."""
    reps, inputs = [], []
    for k in range(len(fabrics)):
        if not held[k] or not data.draw(st.booleans(),
                                        label=f"rel{step}-{k}"):
            continue
        q = data.draw(st.sampled_from(sorted(held[k])),
                      label=f"relq{step}-{k}")
        fabrics[k].release(held[k].pop(q))
        reps.append(k)
        inputs.append(q)
    if reps:
        zeros = np.zeros(len(reps), dtype=np.int64)
        router.release_batch(np.array(reps, dtype=np.int64), zeros,
                             np.array(inputs, dtype=np.int64))


class TestBatchedMultistageRouter:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_interleavings_match_scalar_fabric(self, data):
        """Random connect/release walks: every grant equals the scalar
        fabric's, on every wiring, with per-row divergent occupancy."""
        kind = data.draw(st.sampled_from(KINDS), label="kind")
        size = data.draw(st.sampled_from([2, 4, 8]), label="size")
        rows = data.draw(st.integers(1, 4), label="rows")
        router = BatchedMultistageRouter(make_topology(kind, size),
                                         rows=rows)
        fabrics = [MultistageFabric(make_topology(kind, size))
                   for _ in range(rows)]
        held = [dict() for _ in range(rows)]
        steps = data.draw(st.integers(4, 20), label="steps")
        for step in range(steps):
            _release_rows(data, router, fabrics, held, step)
            q = data.draw(st.integers(0, size - 1), label=f"q{step}")
            _connect_rows(data, router, fabrics, held, q, step)
        # Drain everything: the planes must return to an empty fabric.
        for k, circuits in enumerate(held):
            for q, connection in sorted(circuits.items()):
                fabrics[k].release(connection)
                router.release_batch(np.array([k], dtype=np.int64),
                                     np.zeros(1, dtype=np.int64),
                                     np.array([q], dtype=np.int64))
        assert router._busy.sum() == 0
        assert router._engaged.sum() == 0
        assert router._taken.sum() == 0
        assert (router._path_out == -1).all()

    def test_partitions_are_independent(self):
        """A circuit in one partition never blocks another partition."""
        topology = make_topology("OMEGA", 4)
        router = BatchedMultistageRouter(topology, rows=2, partitions=2)
        reps = np.array([0, 1], dtype=np.int64)
        everything = np.ones((2, 4), dtype=np.uint8)
        granted, first = router.connect_batch(reps, 0, 0, everything)
        assert granted.all()
        granted, second = router.connect_batch(reps, 1, 0, everything)
        assert granted.all()
        assert first.tolist() == second.tolist()
        router.release_batch(reps, np.zeros(2, dtype=np.int64),
                             np.zeros(2, dtype=np.int64))
        assert router._busy[:, 0].sum() == 0
        assert router._busy[:, 1].sum() == 2 * (topology.stages + 1)

    def test_upper_output_preferred_like_the_box_hardware(self):
        """On an empty fabric the route mirrors the scalar preference for
        the upper interchange output (port 0 reaches output 0)."""
        for kind in KINDS:
            router = BatchedMultistageRouter(make_topology(kind, 8), rows=1)
            fabric = MultistageFabric(make_topology(kind, 8))
            granted, ports = router.connect_batch(
                np.array([0], dtype=np.int64), 0, 0,
                np.ones((1, 8), dtype=np.uint8))
            connection = fabric.connect(0, range(8))
            assert granted[0] and int(ports[0]) == connection.output_port

    def test_release_of_missing_circuit_is_a_router_bug(self):
        router = BatchedMultistageRouter(make_topology("OMEGA", 4), rows=1)
        with pytest.raises(SchedulingError):
            router.release_batch(np.zeros(1, dtype=np.int64),
                                 np.zeros(1, dtype=np.int64),
                                 np.zeros(1, dtype=np.int64))


class TestMatchBusBatch:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_agrees_with_single_column_crossbar_matcher(self, data):
        """The documented degeneracy: ``match_pairs_batch`` at ``m = 1``."""
        processors = data.draw(st.integers(1, 6), label="p")
        replications = data.draw(st.integers(1, 6), label="R")
        requesting = np.array(
            [[data.draw(st.integers(0, 1)) for _ in range(processors)]
             for _ in range(replications)], dtype=np.uint8)
        acceptable = np.array(
            [[data.draw(st.integers(0, 1))] for _ in range(replications)],
            dtype=np.uint8)
        bus = match_bus_batch(requesting, acceptable)
        crossbar = match_pairs_batch(requesting, acceptable)
        for got, expected in zip(bus, crossbar):
            assert got.tolist() == expected.tolist()

    def test_lowest_requesting_row_wins_port_zero(self):
        requesting = np.array([[0, 1, 1], [1, 0, 1], [0, 0, 0]],
                              dtype=np.uint8)
        acceptable = np.array([[1], [0], [1]], dtype=np.uint8)
        reps, rows, cols = match_bus_batch(requesting, acceptable)
        # Replication 1's busy bus and replication 2's idle processors
        # both refuse; replication 0 grants its lowest waiting row.
        assert reps.tolist() == [0]
        assert rows.tolist() == [1]
        assert cols.tolist() == [0]

    def test_shape_validation(self):
        with pytest.raises(SchedulingError):
            match_bus_batch(np.ones((2, 3), dtype=np.uint8),
                            np.ones((2, 2), dtype=np.uint8))
        with pytest.raises(SchedulingError):
            match_bus_batch(np.ones((2, 3), dtype=np.uint8),
                            np.ones((3, 1), dtype=np.uint8))
