"""Scaling properties of the distributed scheduler (Section V's claims)."""

import pytest

from repro.networks import ClockedMultistageScheduler, OmegaTopology


class TestLogarithmicScheduling:
    """'The resource scheduling overhead is therefore proportional to the
    delay time in the network (O(log2 N)) and independent of the number of
    requesting processors.'"""

    @pytest.mark.parametrize("size", [4, 8, 16, 32, 64])
    def test_uncontended_allocation_takes_stages_ticks(self, size):
        scheduler = ClockedMultistageScheduler(OmegaTopology(size), {0: 1})
        result = scheduler.run([size - 1])
        outcome = result.outcomes[size - 1]
        assert outcome.port == 0
        assert outcome.hops == scheduler.topology.stages

    @pytest.mark.parametrize("size", [8, 16, 32])
    def test_ticks_independent_of_request_count(self, size):
        """All N requests resolve in O(log N) ticks, not O(N)."""
        scheduler = ClockedMultistageScheduler(
            OmegaTopology(size), [1] * size)
        result = scheduler.run(list(range(size)))
        assert len(result.allocated) == size
        # Ticks: the status wave (log N) plus the query wave (log N) plus
        # bounded re-routing and the quiescence check — far below N.
        assert result.ticks <= 4 * scheduler.topology.stages + 4

    def test_full_load_ticks_grow_logarithmically(self):
        ticks = {}
        for size in (8, 16, 32, 64):
            scheduler = ClockedMultistageScheduler(
                OmegaTopology(size), [1] * size)
            ticks[size] = scheduler.run(list(range(size))).ticks
        # Doubling N adds O(1) stages, not O(N) ticks.
        assert ticks[64] - ticks[8] <= 20
        assert ticks[64] < 64  # decisively sub-linear

    @pytest.mark.parametrize("size", [8, 16, 32])
    def test_average_hops_near_stage_count_on_free_network(self, size):
        """Re-routing is rare when every port is free: the mean number of
        boxes traversed stays within one of log2 N (Fig. 11's metric)."""
        scheduler = ClockedMultistageScheduler(
            OmegaTopology(size), [1] * size)
        result = scheduler.run(list(range(size)))
        stages = scheduler.topology.stages
        assert stages <= result.average_hops <= stages + 1.0


class TestContendedScaling:
    def test_heavier_contention_costs_bounded_reroutes(self):
        """Half the ports free, all processors requesting: every
        allocation still lands, with bounded extra hops."""
        size = 16
        scheduler = ClockedMultistageScheduler(
            OmegaTopology(size), {port: 1 for port in range(0, size, 2)})
        result = scheduler.run(list(range(size)))
        assert len(result.allocated) == size // 2
        for outcome in result.allocated:
            assert outcome.hops <= 4 * scheduler.topology.stages

    def test_blocked_requests_stop_trying_once_status_settles(self):
        """Requests that cannot be satisfied retire after the status wave
        reports no availability — no livelock, bounded attempts."""
        scheduler = ClockedMultistageScheduler(OmegaTopology(8), {3: 1})
        result = scheduler.run(list(range(8)), max_ticks=400)
        assert result.ticks < 400
        assert len(result.allocated) == 1
        for outcome in result.blocked:
            assert outcome.attempts <= 10
