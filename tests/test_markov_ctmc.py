"""Unit tests for the generic CTMC machinery."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.markov import FiniteCTMC


def two_state(a=1.0, b=2.0):
    """0 -> 1 at rate a, 1 -> 0 at rate b."""
    def transitions(state):
        if state == 0:
            yield 1, a
        else:
            yield 0, b
    return transitions


class TestExploration:
    def test_reachable_states_found(self):
        chain = FiniteCTMC(two_state(), initial_states=[0])
        assert chain.num_states == 2
        assert set(chain.states) == {0, 1}

    def test_filter_truncates(self):
        def birth_death(state):
            yield state + 1, 1.0
            if state > 0:
                yield state - 1, 2.0

        chain = FiniteCTMC(birth_death, initial_states=[0],
                           state_filter=lambda s: s <= 10)
        assert chain.num_states == 11

    def test_negative_rate_rejected(self):
        def bad(state):
            yield 1 - state, -1.0

        with pytest.raises(AnalysisError):
            FiniteCTMC(bad, initial_states=[0])

    def test_zero_rates_and_self_loops_ignored(self):
        def with_noise(state):
            yield state, 5.0          # self loop
            yield 1 - state, 0.0      # zero rate
            yield 1 - state, 1.0

        chain = FiniteCTMC(with_noise, initial_states=[0])
        q = chain.generator_matrix().toarray()
        assert q[0, 0] == pytest.approx(-1.0)
        assert q[0, 1] == pytest.approx(1.0)


class TestStationary:
    def test_two_state_balance(self):
        chain = FiniteCTMC(two_state(a=1.0, b=2.0), initial_states=[0])
        pi = chain.stationary_distribution()
        by_state = dict(zip(chain.states, pi))
        assert by_state[0] == pytest.approx(2 / 3)
        assert by_state[1] == pytest.approx(1 / 3)

    def test_generator_rows_sum_to_zero(self):
        chain = FiniteCTMC(two_state(), initial_states=[0])
        q = chain.generator_matrix().toarray()
        assert np.allclose(q.sum(axis=1), 0.0)

    def test_mm1_truncated_matches_closed_form(self):
        arrival, service = 0.5, 1.0

        def mm1(state):
            yield state + 1, arrival
            if state > 0:
                yield state - 1, service

        chain = FiniteCTMC(mm1, initial_states=[0],
                           state_filter=lambda s: s <= 120)
        pi = chain.stationary_distribution()
        by_state = dict(zip(chain.states, pi))
        rho = arrival / service
        for n in range(5):
            assert by_state[n] == pytest.approx((1 - rho) * rho ** n, rel=1e-9)

    def test_single_state_chain(self):
        chain = FiniteCTMC(lambda s: [], initial_states=["only"])
        assert chain.stationary_distribution() == pytest.approx([1.0])

    def test_expected_value_and_probability(self):
        chain = FiniteCTMC(two_state(a=1.0, b=1.0), initial_states=[0])
        assert chain.expected_value(float) == pytest.approx(0.5)
        assert chain.probability(lambda s: s == 1) == pytest.approx(0.5)

    def test_distribution_reused(self):
        chain = FiniteCTMC(two_state(), initial_states=[0])
        pi = chain.stationary_distribution()
        assert chain.expected_value(float, pi) == chain.expected_value(float)
