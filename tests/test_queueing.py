"""Unit and property tests for the classical queueing formulas."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnstableSystemError
from repro.queueing import (
    birth_death_mean,
    birth_death_probabilities,
    erlang_b,
    erlang_c,
    mean_delay_from_queue_length,
    mean_queue_length_from_delay,
    mm1_metrics,
    mm1_state_probability,
    mmc_metrics,
    mmc_state_probability,
    mmck_blocking_probability,
    mmck_state_probabilities,
    normalized_delay,
    traffic_intensity,
    arrival_rate_for_intensity,
)
from repro.queueing.mm1 import mm1_waiting_time_quantile
from repro.queueing.mmc import mmc_mean_queue_length_exact


class TestMM1:
    def test_textbook_values(self):
        metrics = mm1_metrics(arrival_rate=1.0, service_rate=2.0)
        assert metrics.utilization == 0.5
        assert metrics.mean_number_in_system == pytest.approx(1.0)
        assert metrics.mean_time_in_system == pytest.approx(1.0)
        assert metrics.mean_waiting_time == pytest.approx(0.5)

    def test_unstable_rejected(self):
        with pytest.raises(UnstableSystemError):
            mm1_metrics(2.0, 2.0)
        with pytest.raises(UnstableSystemError):
            mm1_metrics(3.0, 2.0)

    def test_state_probabilities_sum_to_one(self):
        total = sum(mm1_state_probability(1.0, 2.0, n) for n in range(200))
        assert total == pytest.approx(1.0)

    def test_littles_law_consistency(self):
        metrics = mm1_metrics(0.7, 1.0)
        assert metrics.mean_number_in_system == pytest.approx(
            metrics.arrival_rate * metrics.mean_time_in_system)

    def test_waiting_quantile_zero_for_small_probability(self):
        assert mm1_waiting_time_quantile(0.5, 1.0, probability=0.2) == 0.0

    def test_waiting_quantile_monotone(self):
        q90 = mm1_waiting_time_quantile(0.8, 1.0, probability=0.9)
        q99 = mm1_waiting_time_quantile(0.8, 1.0, probability=0.99)
        assert q99 > q90 > 0

    @given(rho=st.floats(min_value=0.01, max_value=0.95))
    def test_mm1_equals_mmc_with_one_server(self, rho):
        one = mm1_metrics(rho, 1.0)
        multi = mmc_metrics(rho, 1.0, servers=1)
        assert one.mean_waiting_time == pytest.approx(multi.mean_waiting_time)


class TestErlang:
    def test_erlang_b_zero_load(self):
        assert erlang_b(5, 0.0) == 0.0

    def test_erlang_b_zero_servers_always_blocks(self):
        assert erlang_b(0, 3.0) == 1.0

    def test_erlang_b_known_value(self):
        # Classic: 10 Erlangs on 10 servers ~ 0.2146.
        assert erlang_b(10, 10.0) == pytest.approx(0.2146, abs=1e-3)

    def test_erlang_c_at_capacity(self):
        assert erlang_c(4, 4.0) == 1.0

    def test_erlang_c_above_b(self):
        # Waiting probability exceeds loss probability for the same load.
        assert erlang_c(5, 3.0) > erlang_b(5, 3.0)

    @given(servers=st.integers(1, 20), load=st.floats(0.01, 15.0))
    def test_erlang_b_in_unit_interval(self, servers, load):
        value = erlang_b(servers, load)
        assert 0.0 <= value <= 1.0

    @given(servers=st.integers(1, 12), load=st.floats(0.01, 10.0))
    def test_erlang_b_decreasing_in_servers(self, servers, load):
        assert erlang_b(servers + 1, load) <= erlang_b(servers, load) + 1e-12


class TestMMc:
    def test_matches_direct_summation(self):
        metrics = mmc_metrics(3.0, 1.0, servers=4)
        direct = mmc_mean_queue_length_exact(3.0, 1.0, servers=4)
        assert metrics.mean_number_in_queue == pytest.approx(direct)

    def test_state_probabilities_sum_to_one(self):
        total = sum(mmc_state_probability(2.0, 1.0, 3, n) for n in range(300))
        assert total == pytest.approx(1.0)

    def test_unstable_rejected(self):
        with pytest.raises(UnstableSystemError):
            mmc_metrics(4.0, 1.0, servers=4)

    def test_pooling_beats_partitioning(self):
        # One pooled M/M/4 beats four private M/M/1 at the same total load.
        pooled = mmc_metrics(3.2, 1.0, servers=4).mean_waiting_time
        private = mm1_metrics(0.8, 1.0).mean_waiting_time
        assert pooled < private

    @given(servers=st.integers(1, 8), rho=st.floats(0.05, 0.9))
    def test_mmc_matches_birth_death(self, servers, rho):
        arrival = rho * servers
        probabilities = birth_death_probabilities(
            birth_rate=lambda n: arrival,
            death_rate=lambda n: min(n, servers) * 1.0,
            num_states=600,
        )
        queue_from_bd = birth_death_mean(
            probabilities, value=lambda n: max(0, n - servers))
        metrics = mmc_metrics(arrival, 1.0, servers)
        assert metrics.mean_number_in_queue == pytest.approx(
            queue_from_bd, rel=1e-6, abs=1e-9)


class TestMMcK:
    def test_probabilities_sum_to_one(self):
        probabilities = mmck_state_probabilities(2.0, 1.0, servers=2, capacity=6)
        assert sum(probabilities) == pytest.approx(1.0)
        assert len(probabilities) == 7

    def test_blocking_increases_with_load(self):
        low = mmck_blocking_probability(1.0, 1.0, 2, 4)
        high = mmck_blocking_probability(3.0, 1.0, 2, 4)
        assert high > low

    def test_erlang_b_is_mmcc(self):
        # M/M/c/c blocking equals Erlang B.
        assert mmck_blocking_probability(2.5, 1.0, 3, 3) == pytest.approx(
            erlang_b(3, 2.5))

    def test_capacity_below_servers_rejected(self):
        with pytest.raises(ValueError):
            mmck_state_probabilities(1.0, 1.0, servers=3, capacity=2)


class TestBirthDeath:
    def test_two_state_chain(self):
        probabilities = birth_death_probabilities(
            birth_rate=lambda n: 1.0, death_rate=lambda n: 2.0, num_states=2)
        assert probabilities == pytest.approx([2 / 3, 1 / 3])

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            birth_death_probabilities(lambda n: -1.0, lambda n: 1.0, 3)
        with pytest.raises(ValueError):
            birth_death_probabilities(lambda n: 1.0, lambda n: 0.0, 3)


class TestLittlesLaw:
    def test_round_trip(self):
        delay = mean_delay_from_queue_length(6.0, arrival_rate=2.0)
        assert mean_queue_length_from_delay(delay, arrival_rate=2.0) == 6.0

    def test_normalized_delay(self):
        assert normalized_delay(5.0, service_rate=0.2) == 1.0

    def test_paper_intensity_definition(self):
        # rho = 16 lambda (1/(16 mu_n) + 1/(32 mu_s)).
        rho = traffic_intensity(16 * 0.1, bus_rate_total=16 * 1.0,
                                service_rate_total=32 * 0.1)
        assert rho == pytest.approx(1.6 * (1 / 16 + 1 / 3.2))

    @given(rho=st.floats(0.05, 1.5), ratio=st.floats(0.05, 10.0))
    def test_intensity_inversion(self, rho, ratio):
        arrival = arrival_rate_for_intensity(
            rho, processors=16, bus_rate=1.0, total_resources=32,
            service_rate=ratio)
        recovered = traffic_intensity(16 * arrival, 16 * 1.0, 32 * ratio)
        assert recovered == pytest.approx(rho)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            mean_delay_from_queue_length(1.0, arrival_rate=0.0)
        with pytest.raises(ValueError):
            normalized_delay(1.0, service_rate=-1.0)
        with pytest.raises(ValueError):
            arrival_rate_for_intensity(0.0, 16, 1.0, 32, 1.0)
