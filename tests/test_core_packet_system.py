"""Tests for the packet-switched comparison system (Section II)."""

import pytest

from repro.config import SystemConfig
from repro.core import simulate, simulate_packet_switched
from repro.core.packet_system import PacketSwitchedSystem
from repro.errors import ConfigurationError, SimulationError
from repro.workload import Workload

LIGHT = Workload(arrival_rate=0.02, transmission_rate=1.0, service_rate=0.2)


class TestBasics:
    def test_runs_and_completes_tasks(self):
        result = simulate_packet_switched("8/1x8x8 OMEGA/2", LIGHT,
                                          horizon=4_000.0, warmup=400.0,
                                          seed=1)
        assert result.completed_tasks > 0
        assert result.mean_queueing_delay >= 0.0

    def test_reproducible(self):
        first = simulate_packet_switched("8/1x8x8 OMEGA/2", LIGHT,
                                         horizon=2_000.0, seed=4)
        second = simulate_packet_switched("8/1x8x8 OMEGA/2", LIGHT,
                                          horizon=2_000.0, seed=4)
        assert first.mean_response_time == second.mean_response_time

    @pytest.mark.parametrize("kind", ["OMEGA", "CUBE", "BASELINE"])
    def test_all_multistage_topologies(self, kind):
        result = simulate_packet_switched(f"8/1x8x8 {kind}/2", LIGHT,
                                          horizon=2_000.0, seed=1)
        assert result.completed_tasks > 0

    def test_non_multistage_rejected(self):
        with pytest.raises(ConfigurationError):
            PacketSwitchedSystem(SystemConfig.parse("8/1x8x8 XBAR/2"), LIGHT)

    def test_partitioned_rejected(self):
        with pytest.raises(ConfigurationError):
            PacketSwitchedSystem(SystemConfig.parse("8/2x4x4 OMEGA/2"), LIGHT)

    def test_bad_packet_count_rejected(self):
        with pytest.raises(ConfigurationError):
            PacketSwitchedSystem(SystemConfig.parse("8/1x8x8 OMEGA/2"),
                                 LIGHT, packets_per_task=0)

    def test_single_run_only(self):
        system = PacketSwitchedSystem(SystemConfig.parse("8/1x8x8 OMEGA/2"),
                                      LIGHT)
        system.run(horizon=200.0)
        with pytest.raises(SimulationError):
            system.run(horizon=200.0)


class TestConservation:
    def test_throughput_matches_offered_load(self):
        workload = Workload(arrival_rate=0.04, transmission_rate=1.0,
                            service_rate=0.2)
        result = simulate_packet_switched("8/1x8x8 OMEGA/2", workload,
                                          horizon=40_000.0, warmup=2_000.0,
                                          seed=6)
        offered = 8 * workload.arrival_rate
        rate = result.completed_tasks / (result.simulated_time - 2_000.0)
        assert rate == pytest.approx(offered, rel=0.05)

    def test_store_and_forward_latency_floor(self):
        """Even an empty network imposes (stages + 1 + k - 1)/k transfer
        slots of latency: the last packet leaves after k slots on the
        injection link and then crosses stages more links."""
        workload = Workload(arrival_rate=0.001, transmission_rate=1.0,
                            service_rate=0.2,
                            transmission_distribution="deterministic",
                            service_distribution="deterministic")
        k = 4
        result = simulate_packet_switched("8/1x8x8 OMEGA/2", workload,
                                          horizon=40_000.0, warmup=1_000.0,
                                          packets_per_task=k, seed=2)
        stages = 3
        # Transit of the last packet: k slots to clear injection, then
        # `stages` hops, each 1/k time units.
        expected_transit = (k + stages) / k
        measured_transit = (result.mean_response_time
                            - result.mean_queueing_delay - 5.0)  # minus service
        assert measured_transit == pytest.approx(expected_transit, rel=0.05)


class TestCircuitVersusPacket:
    """The Section II argument, measured."""

    def test_packet_response_never_beats_circuit(self):
        from repro.analysis import workload_at
        for rho, ratio in ((0.5, 0.1), (0.5, 1.0)):
            workload = workload_at(rho, ratio)
            packet = simulate_packet_switched(
                "16/1x16x16 OMEGA/2", workload, horizon=12_000.0,
                warmup=1_200.0, packets_per_task=4, seed=3)
            circuit = simulate("16/1x16x16 OMEGA/2", workload,
                               horizon=12_000.0, warmup=1_200.0, seed=3)
            assert packet.mean_response_time >= 0.95 * circuit.mean_response_time

    def test_early_binding_destroys_packet_capacity_under_load(self):
        """Packet mode must reserve the resource when the task leaves the
        processor (a packet needs an address), so resources are held
        through the whole transit; at high load the circuit system stays
        stable while the packet system's queues run away."""
        from repro.analysis import workload_at
        workload = workload_at(0.9, 1.0)
        packet = simulate_packet_switched(
            "16/1x16x16 OMEGA/2", workload, horizon=12_000.0,
            warmup=1_200.0, packets_per_task=4, seed=3)
        circuit = simulate("16/1x16x16 OMEGA/2", workload,
                           horizon=12_000.0, warmup=1_200.0, seed=3)
        assert circuit.mean_queueing_delay < 5.0
        assert packet.mean_queueing_delay > 10 * circuit.mean_queueing_delay
