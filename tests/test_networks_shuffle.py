"""Unit and property tests for the bit-permutation helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.networks import (
    bit_of,
    inverse_shuffle,
    log2_exact,
    perfect_shuffle,
    with_bit,
)


class TestLog2Exact:
    @pytest.mark.parametrize("value,expected", [(1, 0), (2, 1), (8, 3), (1024, 10)])
    def test_powers_of_two(self, value, expected):
        assert log2_exact(value) == expected

    @pytest.mark.parametrize("bad", [0, -4, 3, 6, 12, 100])
    def test_non_powers_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            log2_exact(bad)


class TestShuffle:
    def test_eight_line_shuffle(self):
        # Stone: line x of N goes to 2x mod (N-1), N-1 fixed.
        mapping = [perfect_shuffle(x, 3) for x in range(8)]
        assert mapping == [0, 2, 4, 6, 1, 3, 5, 7]

    def test_extremes_are_fixed_points(self):
        for bits in (1, 2, 3, 4, 5):
            size = 1 << bits
            assert perfect_shuffle(0, bits) == 0
            assert perfect_shuffle(size - 1, bits) == size - 1

    @given(bits=st.integers(1, 10), data=st.data())
    def test_shuffle_is_a_permutation(self, bits, data):
        size = 1 << bits
        mapped = {perfect_shuffle(x, bits) for x in range(size)}
        assert mapped == set(range(size))

    @given(bits=st.integers(1, 10), data=st.data())
    def test_inverse_undoes_shuffle(self, bits, data):
        address = data.draw(st.integers(0, (1 << bits) - 1))
        assert inverse_shuffle(perfect_shuffle(address, bits), bits) == address
        assert perfect_shuffle(inverse_shuffle(address, bits), bits) == address

    @given(bits=st.integers(2, 10), data=st.data())
    def test_n_shuffles_restore_identity(self, bits, data):
        address = data.draw(st.integers(0, (1 << bits) - 1))
        value = address
        for _ in range(bits):
            value = perfect_shuffle(value, bits)
        assert value == address

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            perfect_shuffle(8, 3)
        with pytest.raises(ValueError):
            inverse_shuffle(-1, 3)


class TestBitHelpers:
    def test_bit_of(self):
        assert bit_of(0b1010, 1) == 1
        assert bit_of(0b1010, 0) == 0

    def test_with_bit(self):
        assert with_bit(0b1010, 0, 1) == 0b1011
        assert with_bit(0b1010, 1, 0) == 0b1000
        assert with_bit(0b1010, 3, 1) == 0b1010

    def test_with_bit_validates(self):
        with pytest.raises(ValueError):
            with_bit(0, 0, 2)

    @given(value=st.integers(0, 1023), position=st.integers(0, 9),
           bit=st.integers(0, 1))
    def test_with_bit_then_bit_of(self, value, position, bit):
        assert bit_of(with_bit(value, position, bit), position) == bit
