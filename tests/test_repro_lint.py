"""Tests for the determinism lint (repro.lint): rules, engine, and CLI."""

import json
import textwrap

import pytest

from repro.cli import main
from repro.lint import (
    DEFAULT_RULES,
    RULES_BY_CODE,
    Finding,
    format_json,
    format_text,
    lint_paths,
    lint_source,
)


def _codes(findings):
    return [finding.code for finding in findings]


class TestSim001NoUnseededRandom:
    def test_plain_import_flagged_at_position(self):
        source = "import os\nimport random\n"
        findings = lint_source(source, "pkg/module.py")
        assert _codes(findings) == ["SIM001"]
        assert findings[0].line == 2
        assert findings[0].column == 1
        assert "RngStream" in findings[0].message

    def test_from_random_import_flagged(self):
        findings = lint_source("from random import shuffle\n", "pkg/module.py")
        assert _codes(findings) == ["SIM001"]

    def test_numpy_random_forms_flagged(self):
        for source in ("import numpy.random\n",
                       "from numpy import random\n",
                       "from numpy.random import default_rng\n",
                       "import numpy as np\n\n\ndef f():\n    return np.random.rand()\n"):
            findings = lint_source(source, "pkg/module.py")
            assert "SIM001" in _codes(findings), source

    def test_rng_module_is_exempt(self):
        findings = lint_source("import random\n", "src/repro/sim/rng.py")
        assert findings == []

    def test_suppression_comment_silences(self):
        source = "import random  # lint: disable=SIM001\n"
        assert lint_source(source, "pkg/module.py") == []

    def test_suppression_is_per_code(self):
        source = "import random  # lint: disable=SIM002\n"
        assert _codes(lint_source(source, "pkg/module.py")) == ["SIM001"]

    def test_unrelated_imports_clean(self):
        source = "import hashlib\nfrom itertools import chain\n"
        assert lint_source(source, "pkg/module.py") == []


class TestSim002NoWallClock:
    def test_time_time_flagged_in_scoped_dirs(self):
        source = "import time\n\n\ndef f():\n    return time.time()\n"
        findings = lint_source(source, "src/repro/sim/clock.py")
        assert _codes(findings) == ["SIM002"]
        assert findings[0].line == 5

    def test_datetime_now_flagged(self):
        source = ("from datetime import datetime\n\n\n"
                  "def f():\n    return datetime.now()\n")
        findings = lint_source(source, "src/repro/core/thing.py")
        assert _codes(findings) == ["SIM002"]

    def test_from_time_import_flagged(self):
        source = "from time import perf_counter\n"
        findings = lint_source(source, "src/repro/networks/foo.py")
        assert _codes(findings) == ["SIM002"]

    def test_outside_scope_not_flagged(self):
        source = "import time\n\n\ndef f():\n    return time.time()\n"
        assert lint_source(source, "benchmarks/bench_thing.py") == []


class TestSim003KernelEncapsulation:
    def test_env_private_write_flagged(self):
        source = "def cb(env):\n    env._now = 99.0\n"
        findings = lint_source(source, "src/repro/core/hack.py")
        assert _codes(findings) == ["SIM003"]

    def test_env_private_method_call_flagged(self):
        source = "def cb(self):\n    self.env._queue.append(None)\n"
        findings = lint_source(source, "src/repro/core/hack.py")
        assert _codes(findings) == ["SIM003"]

    def test_kernel_api_use_is_clean(self):
        source = "def cb(env):\n    env.schedule(env.event(), delay=1.0)\n"
        assert lint_source(source, "src/repro/core/model.py") == []

    def test_kernel_itself_is_exempt(self):
        source = "def step(env):\n    env._now = 1.0\n"
        assert lint_source(source, "src/repro/sim/environment.py") == []


class TestSim004ConfigValidation:
    def test_unvalidated_config_dataclass_flagged(self):
        source = textwrap.dedent("""\
            from dataclasses import dataclass


            @dataclass
            class RetryConfig:
                attempts: int = 3
            """)
        findings = lint_source(source, "pkg/module.py")
        assert _codes(findings) == ["SIM004"]
        assert "RetryConfig" in findings[0].message

    def test_post_init_satisfies_rule(self):
        source = textwrap.dedent("""\
            from dataclasses import dataclass


            @dataclass
            class RetryConfig:
                attempts: int = 3

                def __post_init__(self):
                    assert self.attempts >= 0
            """)
        assert lint_source(source, "pkg/module.py") == []

    def test_non_dataclass_config_ignored(self):
        source = "class ParserConfig:\n    pass\n"
        assert lint_source(source, "pkg/module.py") == []


class TestSim005PicklableWorkers:
    def test_lambda_submitted_to_pool_flagged(self):
        source = textwrap.dedent("""\
            def fan_out(pool, items):
                return [pool.submit(lambda x: x + 1, item) for item in items]
            """)
        findings = lint_source(source, "pkg/module.py")
        assert _codes(findings) == ["SIM005"]
        assert "lambda" in findings[0].message

    def test_lambda_mapped_over_executor_flagged(self):
        source = textwrap.dedent("""\
            def fan_out(executor, items):
                return list(executor.map(lambda x: x + 1, items))
            """)
        assert _codes(lint_source(source, "pkg/module.py")) == ["SIM005"]

    def test_nested_function_submitted_flagged(self):
        source = textwrap.dedent("""\
            def fan_out(pool, items):
                def worker(item):
                    return item + 1

                return [pool.submit(worker, item) for item in items]
            """)
        findings = lint_source(source, "pkg/module.py")
        assert _codes(findings) == ["SIM005"]
        assert "worker" in findings[0].message

    def test_module_level_worker_clean(self):
        source = textwrap.dedent("""\
            def worker(item):
                return item + 1


            def fan_out(pool, items):
                return [pool.submit(worker, item) for item in items]
            """)
        assert lint_source(source, "pkg/module.py") == []

    def test_attribute_pool_receiver_flagged(self):
        source = textwrap.dedent("""\
            def fan_out(self, items):
                return [self.pool.submit(lambda x: x, item) for item in items]
            """)
        assert _codes(lint_source(source, "pkg/module.py")) == ["SIM005"]

    def test_non_pool_receivers_ignored(self):
        source = textwrap.dedent("""\
            def transform(items):
                return list(map(lambda x: x + 1, items))


            def submit_form(client):
                return client.submit(lambda: None)
            """)
        assert lint_source(source, "pkg/module.py") == []

    def test_suppression_comment_silences(self):
        source = ("def f(pool):\n"
                  "    return pool.submit(lambda: 1)  # lint: disable=SIM005\n")
        assert lint_source(source, "pkg/module.py") == []


class TestEngine:
    def test_syntax_error_becomes_finding(self):
        findings = lint_source("def broken(:\n", "pkg/module.py")
        assert _codes(findings) == ["SIM000"]

    def test_findings_sorted_by_position(self):
        source = "import random\nimport numpy.random\n"
        findings = lint_source(source, "pkg/module.py")
        assert [finding.line for finding in findings] == [1, 2]

    def test_format_text_clean_and_dirty(self):
        assert format_text([]) == "repro lint: clean"
        finding = Finding(path="a.py", line=3, column=1,
                          code="SIM001", message="nope")
        report = format_text([finding])
        assert "a.py:3:1: SIM001 nope" in report
        assert "1 finding(s)" in report

    def test_format_json_round_trips(self):
        finding = Finding(path="a.py", line=3, column=1,
                          code="SIM001", message="nope")
        payload = json.loads(format_json([finding]))
        assert payload["count"] == 1
        assert payload["findings"][0]["path"] == "a.py"
        assert payload["findings"][0]["line"] == 3
        assert payload["tool"] == "repro-lint"

    def test_rule_catalogue_complete(self):
        assert sorted(RULES_BY_CODE) == [
            "SIM001", "SIM002", "SIM003", "SIM004", "SIM005"]
        assert all(rule.summary for rule in DEFAULT_RULES)

    def test_missing_target_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["no/such/dir"])


class TestMigratedTree:
    def test_src_is_clean(self):
        """The whole source tree passes its own determinism lint."""
        assert lint_paths(["src"]) == []

    def test_reintroduced_random_import_fires_sim001(self, tmp_path):
        """The fixture the issue demands: put `import random` back into the
        crossbar and SIM001 must fire at the exact file:line."""
        from pathlib import Path

        original = Path("src/repro/networks/crossbar.py").read_text()
        lines = original.splitlines()
        insert_at = next(i for i, line in enumerate(lines)
                         if line.startswith("from typing"))
        lines.insert(insert_at, "import random")
        tainted = tmp_path / "crossbar.py"
        tainted.write_text("\n".join(lines) + "\n")
        findings = lint_paths([str(tainted)])
        assert _codes(findings) == ["SIM001"]
        assert findings[0].line == insert_at + 1
        assert findings[0].path.endswith("crossbar.py")


class TestCli:
    def test_lint_src_exits_zero(self, capsys):
        assert main(["lint", "src"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_json_output(self, capsys):
        assert main(["lint", "src", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0

    def test_lint_dirty_file_exits_nonzero(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert main(["lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out
        assert "dirty.py:1:1" in out

    def test_lint_missing_path_exits_two(self, capsys):
        assert main(["lint", "definitely/not/here"]) == 2
        assert "error" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005"):
            assert code in out
