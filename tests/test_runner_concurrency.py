"""Two-process cache contention tests (the sweep-service shape).

Two ``ResultCache`` instances in separate processes share one root —
interleaving ``put``, no-eviction ``prune``, ``verify(repair=True)``,
and mid-stream ``reindex`` while the SQLite entry index takes writes
from both sides under WAL.  The assertions are the service contract:

* no lost entries — every value either process wrote is retrievable,
  checksum-verified, afterwards;
* no torn index — the database stays readable and queryable no matter
  how the writers interleaved;
* reindex convergence — one rebuild reconciles whatever index drift the
  interleaving produced, byte-identical to the walk's view of the store.

Run in CI as its own step (see runner-parallel's cache-concurrency step);
workers are module-level functions so the test also survives spawn-based
multiprocessing.
"""

import multiprocessing
import pickle

from repro.runner import ResultCache

ENTRIES_PER_WORKER = 40
#: A prune budget far above anything the test writes: exercises the
#: LRU query + delete path without ever evicting (so "no lost entries"
#: stays assertable).
NO_EVICTION_BUDGET = 1 << 30


def _digest(prefix, index):
    return prefix + f"{index:03d}" + "0" * (64 - len(prefix) - 3)


def _value(prefix, index):
    return {"writer": prefix, "index": index, "payload": [index] * 8}


def _churn(root, prefix, error_queue):
    """One writer: put entries, interleaving every maintenance operation."""
    try:
        cache = ResultCache(root)
        for index in range(ENTRIES_PER_WORKER):
            cache.put(_digest(prefix, index), _value(prefix, index),
                      evaluator_id=f"churn-{prefix}")
            if index % 7 == 3:
                cache.prune(NO_EVICTION_BUDGET)
            if index % 11 == 5:
                report = cache.verify(repair=True)
                # Interleaved writes are atomic: repair may race, but it
                # must never find (or manufacture) a corrupt entry.
                if report.corrupt:
                    raise AssertionError(
                        f"verify saw corruption: {report.corrupt}")
            if index == ENTRIES_PER_WORKER // 2:
                cache.reindex()
        # Parting shots: a full maintenance pass from each side.
        cache.prune(NO_EVICTION_BUDGET)
        cache.verify(repair=True)
        error_queue.put(None)
    except BaseException as exc:  # propagate to the parent's assertion
        error_queue.put(f"{type(exc).__name__}: {exc}")


def test_two_process_churn_loses_nothing(tmp_path):
    root = tmp_path / "shared"
    errors = multiprocessing.Queue()
    workers = [
        multiprocessing.Process(target=_churn, args=(str(root), "aa", errors)),
        multiprocessing.Process(target=_churn, args=(str(root), "bb", errors)),
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
    assert all(worker.exitcode == 0 for worker in workers), \
        [worker.exitcode for worker in workers]
    results = [errors.get(timeout=10) for _ in workers]
    assert results == [None, None], results

    # No lost entries: every write from both processes is retrievable and
    # checksum-verified.
    cache = ResultCache(root)
    for prefix in ("aa", "bb"):
        for index in range(ENTRIES_PER_WORKER):
            hit, value = cache.get(_digest(prefix, index))
            assert hit, f"lost entry {prefix}{index:03d}"
            assert pickle.dumps(value) == pickle.dumps(_value(prefix, index))

    # No torn index: it answers queries, and nothing was quarantined.
    entries, total_bytes = cache.index.summary()
    assert entries >= 0 and total_bytes >= 0
    assert cache.stats(walk=True).quarantined == 0

    # Reindex convergence: one rebuild reconciles any drift the racing
    # replace_all/record interleavings produced; afterwards the index is
    # byte-identical to the walk and stable.
    cache.reindex()
    walked = cache.stats(walk=True)
    indexed = cache.stats()
    assert (indexed.entries, indexed.total_bytes) == \
        (walked.entries, walked.total_bytes)
    assert indexed.entries == 2 * ENTRIES_PER_WORKER
    assert not cache.reindex().drifted
    assert cache.verify_fast().clean
