"""Chaos tests for the fault-tolerant execution layer (repro.runner).

The contract under test: with deterministic fault injection enabled —
worker crashes, transient failures, hangs, cache-byte corruption — a sweep
still completes through retry, pool respawn, and graceful degradation, and
the values it produces are byte-identical to a fault-free run (retries and
pool-level recovery recompute pure functions; they cannot change results).
A killed sweep leaves an append-only journal behind and ``resume``
recomputes only the missing units.
"""

import os
import pickle
import time  # lint: disable=SIM002 - tests supervise wall-clock execution

import pytest

from repro.errors import ChaosError, ConfigurationError, WorkerError
from repro.experiments import figure_series
from repro.faults import RetryPolicy
from repro.runner import (
    ChaosPolicy,
    ResultCache,
    SupervisorPolicy,
    SweepJournal,
    SweepRunner,
    WorkUnit,
    degrade_unit,
    resolve_chaos,
)
from repro.runner.evaluators import evaluator


@evaluator("chaos-square")
def _square(seed, params, backend="dense"):
    return params["x"] ** 2 + seed


@evaluator("chaos-marker-hang")
def _marker_hang(seed, params, backend="dense"):
    """Hangs on the first execution only: the marker file is the memory.

    The first worker to run the unit creates the marker and sleeps far past
    any test timeout; after the supervisor kills it, the retry sees the
    marker and returns immediately — a real hung worker, a real recovery.
    """
    marker = params["marker"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("hung once")
        time.sleep(60.0)
    return params["x"] * 10


def _units(count, seed=0):
    return [WorkUnit("chaos-square", seed, {"x": x}) for x in range(count)]


def _fast_policy(max_attempts=5, **kwargs):
    """A supervisor policy whose backoff is measured in microseconds."""
    return SupervisorPolicy(
        max_attempts=max_attempts,
        retry=RetryPolicy(max_retries=max(1, max_attempts),
                          backoff_base=1e-4, backoff_factor=1.0,
                          backoff_cap=1e-3, jitter=0.0),
        **kwargs)


class TestChaosPolicy:
    def test_parse_and_spec_round_trip(self):
        policy = ChaosPolicy.parse("crash=0.1, fail=0.05,seed=7")
        assert policy.crash == 0.1
        assert policy.fail == 0.05
        assert policy.seed == 7
        assert ChaosPolicy.parse(policy.spec()) == policy

    def test_bad_specs_rejected(self):
        for spec in ("crash=1.5", "fail=-0.1", "hang_seconds=0",
                     "bogus=0.5", "crash=notanumber", "crash0.5"):
            with pytest.raises(ConfigurationError):
                ChaosPolicy.parse(spec)

    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert not resolve_chaos().active
        monkeypatch.setenv("REPRO_CHAOS", "fail=0.25,seed=3")
        assert resolve_chaos().fail == 0.25
        explicit = ChaosPolicy(crash=0.5)
        assert resolve_chaos(explicit) is explicit
        assert resolve_chaos(spec="hang=0.1").hang == 0.1

    def test_decisions_are_deterministic(self):
        first = ChaosPolicy(fail=0.5, corrupt=0.5, seed=11)
        second = ChaosPolicy(fail=0.5, corrupt=0.5, seed=11)
        digests = [unit.config_digest for unit in _units(32)]
        for digest in digests:
            assert (first.should_corrupt(digest)
                    == second.should_corrupt(digest))
        # Attempt-salting: the same unit rolls fresh dice each attempt, so
        # under a 50% rate some units fail attempt 1 and pass attempt 2.
        def fails(policy, digest, attempt):
            try:
                policy.maybe_inject(digest, attempt, in_worker=False)
            except ChaosError:
                return True
            return False

        outcomes = {(d, a): fails(first, d, a)
                    for d in digests for a in (1, 2)}
        assert outcomes == {(d, a): fails(second, d, a)
                            for d in digests for a in (1, 2)}
        assert any(outcomes[(d, 1)] and not outcomes[(d, 2)]
                   for d in digests)

    def test_corrupt_bytes_flips_exactly_one_byte(self):
        policy = ChaosPolicy(corrupt=1.0, seed=2)
        blob = bytes(range(256))
        damaged = policy.corrupt_bytes("abcd" * 16, blob)
        assert damaged != blob
        assert len(damaged) == len(blob)
        assert sum(1 for a, b in zip(blob, damaged) if a != b) == 1
        assert damaged == policy.corrupt_bytes("abcd" * 16, blob)

    def test_inline_crash_degrades_to_error(self):
        policy = ChaosPolicy(crash=1.0)
        with pytest.raises(ChaosError):
            policy.maybe_inject("deadbeef", 1, in_worker=False)


class TestSupervisorPolicy:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(unit_timeout=0.0)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(max_pool_respawns=0)

    def test_backoff_is_deterministic_and_positive(self):
        policy = SupervisorPolicy(seed=4)
        delays = [policy.delay_for("cafe" * 16, attempt)
                  for attempt in (1, 2, 3)]
        assert delays == [policy.delay_for("cafe" * 16, attempt)
                          for attempt in (1, 2, 3)]
        assert all(delay > 0 for delay in delays)
        assert max(delays) <= 2.0 * 1.5  # cap 2 s, jitter <= +50%

    def test_degradation_ladder(self):
        batched = WorkUnit("sweep-point", 1, {"x": 1, "engine": "batched"})
        label, scalar = degrade_unit(batched)
        assert label == "engine:batched->scalar"
        assert scalar.params["engine"] == "scalar"
        assert scalar.config_digest != batched.config_digest

        sweep = WorkUnit("analytic-point", 0, {"x": 1}, backend="sweep")
        label, dense = degrade_unit(sweep)
        assert label == "backend:sweep->dense"
        assert dense.backend == "dense"
        assert dense.config_digest != sweep.config_digest

        assert degrade_unit(scalar) is None
        assert degrade_unit(dense) is None


class TestSupervisedRuns:
    def test_injected_failures_converge_byte_identical_serial(self):
        units = _units(12, seed=3)
        baseline = SweepRunner(jobs=1).run_values(units)
        chaos = ChaosPolicy(fail=0.4, seed=5)
        runner = SweepRunner(jobs=1, supervisor=_fast_policy(8), chaos=chaos)
        assert runner.run_values(units) == baseline
        assert runner.last_report.retries > 0
        assert pickle.dumps(baseline) == pickle.dumps(
            [outcome.value for outcome in runner.last_outcomes])

    def test_injected_crashes_converge_byte_identical_pool(self):
        units = _units(10, seed=1)
        chaos = ChaosPolicy(crash=0.25, seed=9)
        # Precondition: the chosen seed really does crash someone's first
        # attempt, so the pool-respawn path is exercised, not skipped.
        assert any(chaos._draw("crash", unit.config_digest, 1) < chaos.crash
                   for unit in units)
        baseline = SweepRunner(jobs=1).run_values(units)
        runner = SweepRunner(jobs=2, supervisor=_fast_policy(8), chaos=chaos)
        assert runner.run_values(units) == baseline
        assert runner.last_report.pool_respawns >= 1

    def test_injected_hangs_recover_via_retry(self):
        units = _units(6, seed=2)
        chaos = ChaosPolicy(hang=0.5, hang_seconds=0.05, seed=13)
        runner = SweepRunner(jobs=2, supervisor=_fast_policy(8), chaos=chaos)
        assert runner.run_values(units) == SweepRunner(jobs=1).run_values(units)

    def test_unit_timeout_kills_a_real_hang(self, tmp_path):
        marker = tmp_path / "hang.marker"
        units = [WorkUnit("chaos-marker-hang", 0,
                          {"x": 7, "marker": str(marker)}),
                 WorkUnit("chaos-square", 0, {"x": 5})]
        runner = SweepRunner(
            jobs=2, supervisor=_fast_policy(4, unit_timeout=1.0))
        start = time.monotonic()
        values = runner.run_values(units)
        assert time.monotonic() - start < 30.0
        assert values == [70, 25]
        assert runner.last_report.timeouts >= 1
        assert runner.last_report.pool_respawns >= 1
        assert marker.exists()

    def test_budget_exhaustion_surfaces_worker_error(self):
        chaos = ChaosPolicy(fail=1.0)
        runner = SweepRunner(jobs=1, supervisor=_fast_policy(2), chaos=chaos)
        with pytest.raises(WorkerError):
            runner.run(_units(2))
        outcomes = runner.run(_units(2), raise_on_error=False)
        assert all(not outcome.ok for outcome in outcomes)
        assert all("ChaosError" in outcome.error for outcome in outcomes)
        assert runner.last_report.failures

    def test_permanent_crash_walks_pool_to_serial(self):
        chaos = ChaosPolicy(crash=1.0)
        runner = SweepRunner(jobs=2, supervisor=_fast_policy(2), chaos=chaos)
        outcomes = runner.run(_units(4), raise_on_error=False)
        assert all(not outcome.ok for outcome in outcomes)
        assert all("pool->serial" in outcome.degraded
                   for outcome in outcomes)
        assert runner.last_report.serial_fallbacks == 4

    def test_degradation_changes_digest_and_is_recorded(self, tmp_path):
        # A unit whose batched engine always fails degrades to scalar; the
        # scalar result must be cached under the *scalar* digest.
        unit = WorkUnit("chaos-square", 0, {"x": 3, "engine": "batched"})
        # Inject only against the batched digest: run with max_attempts=1
        # and a policy seeded so the batched unit fails its one attempt and
        # the scalar rung does not.  Deterministically find such a seed.
        _label, scalar = degrade_unit(unit)
        seed = next(
            s for s in range(200)
            if ChaosPolicy(fail=0.5, seed=s)._draw(
                "fail", unit.config_digest, 1) < 0.5
            and not any(
                ChaosPolicy(fail=0.5, seed=s)._draw(
                    "fail", scalar.config_digest, a) < 0.5
                for a in (1, 2, 3)))
        chaos = ChaosPolicy(fail=0.5, seed=seed)
        cache = ResultCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=cache,
                             supervisor=_fast_policy(1), chaos=chaos)
        [outcome] = runner.run([unit])
        assert outcome.ok
        assert outcome.degraded == ("engine:batched->scalar",)
        assert outcome.computed_digest == scalar.config_digest
        hit, value = cache.get(scalar.config_digest)
        assert hit and value == outcome.value
        assert cache.get(unit.config_digest)[0] is False
        assert runner.last_report.degradations == [
            (unit.config_digest, "engine:batched->scalar")]

    def test_keyboard_interrupt_cancels_and_propagates(self, tmp_path,
                                                       monkeypatch):
        import repro.runner.supervisor as supervisor_module

        def interrupted(*_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(supervisor_module, "wait_futures", interrupted)
        runner = SweepRunner(jobs=2, cache=ResultCache(tmp_path))
        with pytest.raises(KeyboardInterrupt):
            runner.run(_units(8))
        # Atomic writes: an interrupted run leaves no torn temp files.
        # (The advisory SQLite entry index and its WAL companions live
        # beside the store by design — they are not torn state.)
        from repro.runner.index import INDEX_FILENAME

        leftovers = [path for path in tmp_path.rglob("*")
                     if path.is_file() and not path.name.endswith(".pkl")
                     and not path.name.startswith(INDEX_FILENAME)]
        assert leftovers == []


class TestCacheChaos:
    def test_corrupted_puts_are_quarantined_never_served(self, tmp_path):
        units = _units(3, seed=7)
        chaos = ChaosPolicy(corrupt=1.0, seed=1)
        writer = SweepRunner(jobs=1, cache=ResultCache(tmp_path, chaos=chaos))
        baseline = writer.run_values(units)

        clean = ResultCache(tmp_path)
        report = clean.verify()
        assert len(report.corrupt) == 3 and report.ok == 0
        for unit in units:
            hit, _value = clean.get(unit.config_digest)
            assert hit is False
        assert clean.corrupt == 3
        assert clean.stats().quarantined == 3

        # Recompute without chaos: values identical, store now verified.
        rerun = SweepRunner(jobs=1, cache=clean)
        assert rerun.run_values(units) == baseline
        assert clean.verify().clean

    def test_runner_chaos_reaches_cache_writes(self, tmp_path):
        chaos = ChaosPolicy(corrupt=1.0, seed=1)
        runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path), chaos=chaos)
        runner.run_values(_units(2))
        assert len(ResultCache(tmp_path).verify().corrupt) == 2


class TestJournalResume:
    def test_resume_recomputes_only_missing_units(self, tmp_path):
        units = _units(6, seed=4)
        cache = ResultCache(tmp_path)
        journal = SweepJournal.for_sweep(tmp_path, "chaos-test", 4)

        first = SweepRunner(jobs=1, cache=cache, journal=journal)
        first.run(units[:3])    # the "killed at 50%" prefix
        assert journal.completed_digests() == {
            unit.config_digest for unit in units[:3]}

        second = SweepRunner(jobs=1, cache=cache, journal=journal,
                             resume=True)
        values = second.run_values(units)
        assert values == [unit.params["x"] ** 2 + 4 for unit in units]
        report = second.last_report
        assert report.cache_hits == 3
        assert report.resumed == 3
        assert report.computed == 3

        summary = journal.summary()
        assert summary.ok == 9          # 3 + (3 resumed + 3 computed)
        assert summary.resumed == 3
        assert summary.failed == 0

    def test_torn_journal_lines_are_skipped(self, tmp_path):
        journal = SweepJournal(tmp_path / "torn.jsonl")
        journal.record("a" * 64, "ok")
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "digest": "b", "status"')  # torn
        journal.record("c" * 64, "failed", attempts=3,
                       error="Traceback\nChaosError: injected")
        entries = journal.entries()
        assert len(entries) == 2
        assert journal.summary().skipped_lines == 1
        assert journal.completed_digests() == {"a" * 64}
        assert entries[1]["error"].startswith("ChaosError")

    def test_figure_series_journals_and_resumes(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=cache)
        first = figure_series("fig4", intensities=[0.3, 0.6], runner=runner)
        assert runner.journal is not None and runner.journal.exists()
        computed = runner.last_report.computed
        assert computed == len(runner.last_outcomes)

        resumed_runner = SweepRunner(jobs=1, cache=cache)
        second = figure_series("fig4", intensities=[0.3, 0.6],
                               runner=resumed_runner, resume=True)
        assert second == first
        assert resumed_runner.last_report.computed == 0
        assert resumed_runner.last_report.resumed == computed

    def test_resume_without_cache_is_rejected(self):
        with pytest.raises(ConfigurationError):
            figure_series("fig4", intensities=[0.3],
                          runner=SweepRunner(jobs=1), resume=True)


class TestEndToEndChaos:
    def test_ten_percent_chaos_sweep_is_byte_identical(self, tmp_path):
        """The acceptance bar: 10% crashes + 5% corruption, same bytes."""
        units = _units(16, seed=6)
        baseline = pickle.dumps(SweepRunner(jobs=1).run_values(units))
        chaos = ChaosPolicy(crash=0.10, fail=0.05, corrupt=0.05, seed=17)
        runner = SweepRunner(jobs=2, cache=ResultCache(tmp_path),
                             supervisor=_fast_policy(8), chaos=chaos)
        values = runner.run_values(units)
        assert pickle.dumps(values) == baseline
        report = runner.last_report
        assert not report.failures
        assert not report.degradations   # retries alone must absorb this
        # And the store holds no silent lies: every surviving entry verifies.
        verify = ResultCache(tmp_path).verify(repair=True)
        assert verify.ok + len(verify.corrupt) == verify.checked
