"""Tests for transient CTMC analysis by uniformization."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.markov import (
    FiniteCTMC,
    SbusChain,
    time_to_stationarity,
    transient_distribution,
)


def two_state_chain(a=1.0, b=2.0):
    def transitions(state):
        if state == 0:
            yield 1, a
        else:
            yield 0, b
    return FiniteCTMC(transitions, initial_states=[0])


class TestTransientDistribution:
    def test_time_zero_is_initial(self):
        chain = two_state_chain()
        result = transient_distribution(chain, 0.0)
        assert result == pytest.approx([1.0, 0.0])

    def test_matches_closed_form_two_state(self):
        """P_00(t) = b/(a+b) + a/(a+b) exp(-(a+b) t)."""
        a, b = 1.0, 2.0
        chain = two_state_chain(a, b)
        for t in (0.1, 0.5, 2.0, 10.0):
            result = transient_distribution(chain, t)
            expected = b / (a + b) + (a / (a + b)) * np.exp(-(a + b) * t)
            assert result[0] == pytest.approx(expected, abs=1e-8)

    def test_converges_to_stationary(self):
        chain = two_state_chain()
        stationary = chain.stationary_distribution()
        late = transient_distribution(chain, 100.0)
        assert late == pytest.approx(stationary, abs=1e-9)

    def test_custom_initial_distribution(self):
        chain = two_state_chain()
        result = transient_distribution(chain, 0.0, initial=[0.25, 0.75])
        assert result == pytest.approx([0.25, 0.75])

    def test_sbus_chain_transient_mass_conserved(self):
        chain_spec = SbusChain(arrival_rate=0.4, transmission_rate=1.0,
                               service_rate=0.5, resources=2)
        chain = FiniteCTMC(chain_spec.transitions, initial_states=[(0, 0, 0)],
                           state_filter=lambda s: chain_spec.level(s) <= 30)
        for t in (0.5, 5.0, 50.0):
            result = transient_distribution(chain, t)
            assert result.sum() == pytest.approx(1.0)
            assert result.min() >= 0.0

    def test_invalid_inputs(self):
        chain = two_state_chain()
        with pytest.raises(AnalysisError):
            transient_distribution(chain, -1.0)
        with pytest.raises(AnalysisError):
            transient_distribution(chain, 1.0, initial=[0.7, 0.7])
        with pytest.raises(AnalysisError):
            transient_distribution(chain, 1.0, initial=[1.0])


class TestTimeToStationarity:
    def test_two_state_mixes_fast(self):
        chain = two_state_chain()
        mixing = time_to_stationarity(chain, tolerance=1e-3)
        # Rate a+b = 3: a handful of time units suffices.
        assert mixing < 20.0

    def test_warmup_guidance_for_sbus(self):
        """The SBUS chain at moderate load mixes far faster than the
        simulation warm-ups used in the benchmarks (>= 800 time units)."""
        chain_spec = SbusChain(arrival_rate=0.3, transmission_rate=1.0,
                               service_rate=0.5, resources=2)
        chain = FiniteCTMC(chain_spec.transitions, initial_states=[(0, 0, 0)],
                           state_filter=lambda s: chain_spec.level(s) <= 40)
        mixing = time_to_stationarity(chain, tolerance=1e-3)
        assert mixing < 800.0
