"""Tests for the gate-level crossbar cell and wavefront cycles (Table I)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError
from repro.networks import (
    MODE_REQUEST,
    MODE_RESET,
    REQUEST_GATE_DELAY,
    RESET_GATE_DELAY,
    DistributedCrossbar,
    cell_logic,
    priority_match,
)


class TestCellTruthTable:
    """Exhaustive check of Table I (E8)."""

    @pytest.mark.parametrize("x,y,latch,expected", [
        # MODE = request: (x_next, y_next, set, reset)
        (0, 0, False, (0, 0, 0, 0)),
        (0, 0, True, (0, 0, 0, 0)),
        (0, 1, False, (0, 1, 0, 0)),   # pass Y when latch off
        (0, 1, True, (0, 0, 0, 0)),    # latched cell hides the bus below
        (1, 0, False, (1, 0, 0, 0)),   # request travels right
        (1, 0, True, (1, 0, 0, 0)),
        (1, 1, False, (0, 0, 1, 0)),   # capture: set latch
        (1, 1, True, (0, 0, 1, 0)),
    ])
    def test_request_mode(self, x, y, latch, expected):
        assert cell_logic(MODE_REQUEST, x, y, latch) == expected

    @pytest.mark.parametrize("x,y,latch,expected", [
        # MODE = reset: X and Y pass through; X resets the latch.
        (0, 0, False, (0, 0, 0, 0)),
        (0, 1, False, (0, 1, 0, 0)),
        (1, 0, False, (1, 0, 0, 1)),
        (1, 1, False, (1, 1, 0, 1)),
        (1, 1, True, (1, 1, 0, 1)),
    ])
    def test_reset_mode(self, x, y, latch, expected):
        assert cell_logic(MODE_RESET, x, y, latch) == expected

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            cell_logic(MODE_REQUEST, 2, 0, False)
        with pytest.raises(ValueError):
            cell_logic("half-duplex", 0, 0, False)


class TestRequestCycle:
    def test_single_request_takes_first_available_bus(self):
        switch = DistributedCrossbar(4, 4)
        result = switch.request_cycle([2], [1, 3])
        assert result.granted == {2: 1}
        assert result.unsatisfied == set()
        assert result.unallocated == {3}
        assert switch.connections() == {2: 1}

    def test_lower_rows_have_priority(self):
        switch = DistributedCrossbar(4, 4)
        result = switch.request_cycle([0, 1, 2], [2])
        assert result.granted == {0: 2}
        assert result.unsatisfied == {1, 2}

    def test_each_row_takes_lowest_remaining_column(self):
        switch = DistributedCrossbar(4, 4)
        result = switch.request_cycle([0, 1], [0, 1, 2])
        assert result.granted == {0: 0, 1: 1}
        assert result.unallocated == {2}

    def test_latched_cell_hides_column(self):
        switch = DistributedCrossbar(4, 4)
        switch.request_cycle([0], [1])
        # Column 1 stays latched by row 0; even if the controller (wrongly)
        # raises Y on it, rows below must not see it.
        result = switch.request_cycle([2], [1])
        assert result.granted == {}
        assert result.unsatisfied == {2}

    def test_existing_connection_not_disturbed(self):
        switch = DistributedCrossbar(4, 4)
        switch.request_cycle([0], [0, 1])
        switch.request_cycle([1], [1])
        assert switch.connections() == {0: 0, 1: 1}

    def test_gate_delay_bound(self):
        """The request wavefront settles within 4 (p + m) gate delays."""
        for p, m in [(2, 2), (4, 8), (16, 32)]:
            switch = DistributedCrossbar(p, m)
            result = switch.request_cycle(list(range(p)), list(range(m)))
            assert result.gate_delays <= REQUEST_GATE_DELAY * (p + m)
            assert result.gate_delays > 0

    def test_out_of_range_rejected(self):
        switch = DistributedCrossbar(2, 2)
        with pytest.raises(SchedulingError):
            switch.request_cycle([2], [0])
        with pytest.raises(SchedulingError):
            switch.request_cycle([0], [5])


class TestResetCycle:
    def test_reset_releases_row(self):
        switch = DistributedCrossbar(4, 4)
        switch.request_cycle([0, 1], [0, 1])
        result = switch.reset_cycle([0])
        assert result.granted == {0: 0}
        assert switch.connections() == {1: 1}

    def test_reset_delay_bound(self):
        switch = DistributedCrossbar(8, 8)
        result = switch.reset_cycle([0])
        assert result.gate_delays == RESET_GATE_DELAY * 16

    def test_released_bus_reusable(self):
        switch = DistributedCrossbar(2, 1)
        switch.request_cycle([0], [0])
        switch.reset_cycle([0])
        result = switch.request_cycle([1], [0])
        assert result.granted == {1: 0}


class TestPriorityMatchEquivalence:
    """The closed form must equal the wavefront hardware exactly."""

    @settings(max_examples=60, deadline=None)
    @given(
        processors=st.integers(1, 8),
        buses=st.integers(1, 8),
        data=st.data(),
    )
    def test_matches_hardware(self, processors, buses, data):
        requesting = data.draw(st.sets(
            st.integers(0, processors - 1)))
        available = data.draw(st.sets(st.integers(0, buses - 1)))
        switch = DistributedCrossbar(processors, buses)
        hardware = switch.request_cycle(sorted(requesting), sorted(available))
        closed_form = priority_match(sorted(requesting), sorted(available))
        assert hardware.granted == closed_form

    def test_occupied_columns_excluded(self):
        assignment = priority_match([0, 1], [0, 1, 2], occupied_columns={0})
        assert assignment == {0: 1, 1: 2}
