"""Tests for the multiple-resource-types extension (end of Section V).

The paper: "control signal Q has to be augmented by the type of resource
requested, and status signal S has to be sent for each type ... the number
of resource-availability registers at each output port ... is increased so
that there is one register for each type."
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.networks import (
    ClockedMultistageScheduler,
    InterchangeBox,
    OmegaTopology,
)
from repro.networks.interchange import DEFAULT_TYPE


def scheduler(free, size=8):
    return ClockedMultistageScheduler(OmegaTopology(size), free)


class TestTypedRegisters:
    def test_box_keeps_one_register_per_type(self):
        box = InterchangeBox(0, 0, resource_types=("fft", "sort"))
        box.set_available(0, "fft", True)
        assert box.is_available(0, "fft")
        assert not box.is_available(0, "sort")
        assert not box.is_available(1, "fft")

    def test_status_is_per_type(self):
        box = InterchangeBox(0, 0, resource_types=("fft", "sort"))
        box.set_available(1, "sort", True)
        assert box.status_for_input(0, lambda p: True, "sort")
        assert not box.status_for_input(0, lambda p: True, "fft")


class TestTypedScheduling:
    def test_requests_find_their_own_type(self):
        sched = scheduler({0: {"fft": 1}, 3: {"sort": 1}, 6: {"fft": 1}})
        result = sched.run([(1, "fft"), (2, "sort"), (5, "fft")])
        assert len(result.allocated) == 3
        by_source = result.outcomes
        assert by_source[2].port == 3          # the only sort port
        assert {by_source[1].port, by_source[5].port} == {0, 6}

    def test_wrong_type_blocks_even_with_free_resources(self):
        sched = scheduler({0: {"fft": 3}})
        result = sched.run([(4, "sort")])
        assert result.outcomes[4].port is None

    def test_mixed_types_on_one_port(self):
        sched = scheduler({5: {"fft": 1, "sort": 1}})
        result = sched.run([(0, "sort")])
        assert result.outcomes[0].port == 5
        # Only the sort unit was consumed.
        assert sched.free_resources[5]["fft"] == 1
        assert sched.free_resources[5]["sort"] == 0

    def test_type_contention_allocates_min_of_supply(self):
        sched = scheduler({2: {"fft": 1}})
        result = sched.run([(0, "fft"), (1, "fft"), (4, "fft")])
        assert len(result.allocated) == 1
        assert result.allocated[0].port == 2

    def test_untyped_api_unchanged(self):
        """Plain integer requesters and counts keep working (DEFAULT_TYPE)."""
        sched = scheduler({0: 1, 1: 1, 4: 1, 5: 1})
        result = sched.run([0, 3, 4, 5])
        assert result.average_hops == 3.5
        assert all(o.resource_type == DEFAULT_TYPE
                   for o in result.outcomes.values())

    def test_typed_and_untyped_mix_rejected_gracefully(self):
        """A typed request against untyped (DEFAULT_TYPE) resources blocks."""
        sched = scheduler({0: 2})
        result = sched.run([(3, "fft")])
        assert result.outcomes[3].port is None

    def test_negative_typed_count_rejected(self):
        with pytest.raises(ConfigurationError):
            scheduler({0: {"fft": -1}})

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_allocations_respect_types(self, data):
        size = 8
        types = ("a", "b")
        free = {}
        for port in data.draw(st.sets(st.integers(0, size - 1), max_size=5)):
            free[port] = {rtype: data.draw(st.integers(0, 2))
                          for rtype in types}
        requesters = []
        for source in data.draw(st.sets(st.integers(0, size - 1), max_size=5)):
            requesters.append((source, data.draw(st.sampled_from(types))))
        sched = scheduler(free)
        result = sched.run(requesters)
        supply = {rtype: sum(v.get(rtype, 0) for v in free.values())
                  for rtype in types}
        for outcome in result.allocated:
            # Allocated port must have offered that type.
            assert free[outcome.port].get(outcome.resource_type, 0) >= 1
        for rtype in types:
            allocated = sum(1 for o in result.allocated
                            if o.resource_type == rtype)
            demanded = sum(1 for _s, t in requesters if t == rtype)
            assert allocated <= min(supply[rtype], demanded)
