"""Unit tests for the event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Event, PRIORITY_URGENT


def test_event_starts_pending():
    env = Environment()
    event = env.event()
    assert not event.triggered
    assert not event.processed


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_succeed_carries_value():
    env = Environment()
    event = env.event()
    event.succeed(42)
    env.run()
    assert event.processed
    assert event.ok
    assert event.value == 42


def test_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(RuntimeError("late"))


def test_fail_raises_on_value_access():
    env = Environment()
    event = env.event()
    event.fail(RuntimeError("boom"))
    env.run()
    assert event.triggered
    assert not event.ok
    with pytest.raises(RuntimeError):
        _ = event.value


def test_fail_requires_exception_instance():
    env = Environment()
    event = env.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_callbacks_run_in_registration_order():
    env = Environment()
    event = env.event()
    calls = []
    event.add_callback(lambda e: calls.append("first"))
    event.add_callback(lambda e: calls.append("second"))
    event.succeed()
    env.run()
    assert calls == ["first", "second"]


def test_callback_added_after_processing_fires_immediately():
    env = Environment()
    event = env.event()
    event.succeed("done")
    env.run()
    late = []
    event.add_callback(lambda e: late.append(e.value))
    assert late == ["done"]


def test_timeout_fires_at_right_time():
    env = Environment()
    seen = []
    timeout = env.timeout(5.0, value="ping")
    timeout.add_callback(lambda e: seen.append((env.now, e.value)))
    env.run()
    assert seen == [(5.0, "ping")]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_any_of_fires_on_first_child():
    env = Environment()
    slow = env.timeout(10.0, value="slow")
    fast = env.timeout(1.0, value="fast")
    condition = env.any_of([slow, fast])
    env.run_until_event(condition)
    assert env.now == 1.0
    assert condition.value == {fast: "fast"}


def test_all_of_waits_for_every_child():
    env = Environment()
    first = env.timeout(1.0, value=1)
    second = env.timeout(3.0, value=2)
    condition = env.all_of([first, second])
    env.run_until_event(condition)
    assert env.now == 3.0
    assert condition.value == {first: 1, second: 2}


def test_all_of_empty_fires_immediately():
    env = Environment()
    condition = env.all_of([])
    env.run()
    assert condition.processed
    assert condition.value == {}


def test_condition_propagates_child_failure():
    env = Environment()
    bad = env.event()
    good = env.timeout(5.0)
    condition = env.all_of([bad, good])
    bad.fail(ValueError("child died"))
    env.run()
    assert condition.triggered
    assert not condition.ok


def test_priority_orders_same_time_events():
    env = Environment()
    order = []
    normal = env.timeout(1.0)
    urgent = env.timeout(1.0, priority=PRIORITY_URGENT)
    normal.add_callback(lambda e: order.append("normal"))
    urgent.add_callback(lambda e: order.append("urgent"))
    env.run()
    assert order == ["urgent", "normal"]


def test_same_time_same_priority_pops_fifo():
    """Regression: timestamp ties resolve by monotonic schedule order.

    The heap entry is a QueueEntry(time, priority, sequence, event); the
    sequence tie-break must make same-slot events pop in the order they
    were scheduled, on every Python version, and the comparison must never
    fall through to the Event objects themselves.
    """
    env = Environment()
    order = []
    for label in range(8):
        timer = env.timeout(3.0)
        timer.add_callback(lambda e, lab=label: order.append(lab))
    env.run()
    assert order == list(range(8))


def test_queue_entry_orders_by_time_priority_sequence():
    from repro.sim import QueueEntry

    env = Environment()
    a, b = Event(env), Event(env)
    assert QueueEntry(1.0, 1, 0, a) < QueueEntry(2.0, 0, 1, b)
    assert QueueEntry(1.0, 0, 5, a) < QueueEntry(1.0, 1, 0, b)
    assert QueueEntry(1.0, 1, 0, a) < QueueEntry(1.0, 1, 1, b)


def test_interleaved_schedules_keep_fifo_within_slot():
    env = Environment()
    order = []
    early = env.timeout(1.0)
    late_first = env.timeout(2.0)
    early.add_callback(lambda e: order.append("early"))
    late_first.add_callback(lambda e: order.append("late-first"))
    late_second = env.timeout(2.0)
    late_second.add_callback(lambda e: order.append("late-second"))
    env.run()
    assert order == ["early", "late-first", "late-second"]
