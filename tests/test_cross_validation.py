"""Cross-validation: independent implementations must agree.

The repository contains several independently written engines for the same
physics; these property tests pin them against each other:

* the clocked distributed scheduler versus the exhaustive optimal mapping
  (never allocates more, and on a free network with fully settled status
  its shortfall is bounded);
* the settled-status fabric versus the exhaustive optimal (sequential
  greedy lower bound);
* the cycle-accurate crossbar at zero gate time versus the event-driven
  crossbar simulator (covered in test_core_cycle_system; here the
  gate-level wavefront versus the closed-form matcher on random state).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.networks import (
    ClockedMultistageScheduler,
    DistributedCrossbar,
    MultistageFabric,
    OmegaTopology,
    max_conflict_free,
    priority_match,
)


class TestSchedulerVersusOptimal:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_clocked_never_exceeds_optimal(self, data):
        size = 8
        requesters = data.draw(st.lists(st.integers(0, size - 1), unique=True,
                                        min_size=1, max_size=4))
        ports = data.draw(st.lists(st.integers(0, size - 1), unique=True,
                                   min_size=1, max_size=4))
        topology = OmegaTopology(size)
        best, _mapping = max_conflict_free(topology, requesters, ports)
        scheduler = ClockedMultistageScheduler(
            topology, {port: 1 for port in ports})
        result = scheduler.run(requesters)
        assert len(result.allocated) <= best

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_clocked_close_to_optimal_on_free_network(self, data):
        """With settled status and backtracking, the distributed search
        comes within one allocation of the exhaustive optimum on small
        instances (it is not globally optimal: committed circuits are
        never rearranged)."""
        size = 8
        requesters = data.draw(st.lists(st.integers(0, size - 1), unique=True,
                                        min_size=1, max_size=3))
        ports = data.draw(st.lists(st.integers(0, size - 1), unique=True,
                                   min_size=1, max_size=3))
        topology = OmegaTopology(size)
        best, _mapping = max_conflict_free(topology, requesters, ports)
        scheduler = ClockedMultistageScheduler(
            topology, {port: 1 for port in ports})
        result = scheduler.run(requesters)
        assert len(result.allocated) >= best - 1

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_fabric_greedy_never_exceeds_optimal(self, data):
        size = 8
        requesters = data.draw(st.lists(st.integers(0, size - 1), unique=True,
                                        min_size=1, max_size=4))
        ports = data.draw(st.lists(st.integers(0, size - 1), unique=True,
                                   min_size=1, max_size=4))
        topology = OmegaTopology(size)
        best, _mapping = max_conflict_free(topology, requesters, ports)
        fabric = MultistageFabric(topology)
        remaining = set(ports)
        allocated = 0
        for source in requesters:
            connection = fabric.connect(source, remaining)
            if connection is not None:
                remaining.discard(connection.output_port)
                allocated += 1
        assert allocated <= best


class TestWavefrontVersusClosedForm:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_with_pre_latched_state(self, data):
        """The equivalence holds from *any* reachable switch state, not
        just the empty one: pre-latch random connections, then compare."""
        processors, buses = 6, 6
        switch = DistributedCrossbar(processors, buses)
        pre_rows = data.draw(st.lists(st.integers(0, processors - 1),
                                      unique=True, max_size=3))
        pre_columns = data.draw(st.lists(st.integers(0, buses - 1),
                                         unique=True, max_size=3))
        for row, column in zip(pre_rows, pre_columns):
            outcome = switch.request_cycle([row], [column])
            assert outcome.granted == {row: column}
        latched_rows = set(switch.connections())
        latched_columns = set(switch.connections().values())
        requesting = sorted(data.draw(st.sets(st.integers(0, processors - 1)))
                            - latched_rows)
        available = sorted(data.draw(st.sets(st.integers(0, buses - 1)))
                           - latched_columns)
        hardware = switch.request_cycle(requesting, available).granted
        assert hardware == priority_match(requesting, available)


class TestConservationAcrossEngines:
    def test_generated_equals_completed_plus_in_flight(self):
        from repro.config import SystemConfig
        from repro.core import RsinSystem
        from repro.workload import Workload
        system = RsinSystem(SystemConfig.parse("8/1x8x8 OMEGA/2"),
                            Workload(0.06, 1.0, 0.2), seed=5)
        result = system.run(horizon=5_000.0)
        queued = sum(len(processor.queue) for processor in system.processors)
        transmitting = sum(1 for processor in system.processors
                           if processor.transmitting is not None)
        serving = sum(port.busy_resources
                      for partition in system.ports for port in partition)
        assert (system.metrics.generated_tasks
                == result.completed_tasks + queued + transmitting + serving)
