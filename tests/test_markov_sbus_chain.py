"""Unit and property tests for the SBUS Markov chain structure (Fig. 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.markov import SbusChain


def make_chain(resources=3):
    return SbusChain(arrival_rate=1.0, transmission_rate=2.0,
                     service_rate=0.5, resources=resources)


class TestFeasibility:
    def test_transmitting_needs_free_resource(self):
        chain = make_chain(resources=3)
        assert chain.is_feasible((0, 1, 2))
        assert not chain.is_feasible((0, 1, 3))   # all resources busy

    def test_queueing_needs_busy_bus_or_full_pool(self):
        chain = make_chain(resources=3)
        assert chain.is_feasible((2, 1, 1))
        assert chain.is_feasible((2, 0, 3))
        assert not chain.is_feasible((2, 0, 1))   # idle bus + free resource

    def test_bounds(self):
        chain = make_chain(resources=3)
        assert not chain.is_feasible((-1, 0, 0))
        assert not chain.is_feasible((0, 2, 0))
        assert not chain.is_feasible((0, 0, 4))


class TestLevels:
    def test_level_counts_tasks(self):
        chain = make_chain()
        assert chain.level((2, 1, 1)) == 4
        assert chain.level((0, 0, 0)) == 0

    def test_states_at_small_levels(self):
        chain = make_chain(resources=3)
        assert chain.states_at_level(0) == [(0, 0, 0)]
        assert set(chain.states_at_level(1)) == {(0, 1, 0), (0, 0, 1)}

    def test_repeating_levels_have_r_plus_1_states(self):
        chain = make_chain(resources=3)
        for level in range(chain.repeating_level, chain.repeating_level + 4):
            states = chain.states_at_level(level)
            assert len(states) == 4
            assert states[-1][1] == 0          # idle-bus phase last
            assert states[-1][2] == 3

    def test_all_level_states_feasible(self):
        chain = make_chain(resources=4)
        for level in range(0, 12):
            for state in chain.states_at_level(level):
                assert chain.is_feasible(state)
                assert chain.level(state) == level


class TestTransitions:
    def test_transitions_preserve_feasibility(self):
        chain = make_chain(resources=3)
        for level in range(0, 10):
            for state in chain.states_at_level(level):
                for target, rate in chain.transitions(state):
                    assert rate > 0
                    assert chain.is_feasible(target), (state, target)

    def test_transitions_move_one_level(self):
        chain = make_chain(resources=3)
        for level in range(0, 10):
            for state in chain.states_at_level(level):
                for target, _rate in chain.transitions(state):
                    assert abs(chain.level(target) - level) <= 1

    def test_empty_state_only_arrival(self):
        chain = make_chain()
        moves = list(chain.transitions((0, 0, 0)))
        assert moves == [((0, 1, 0), chain.arrival_rate)]

    def test_bus_stall_boundary(self):
        # N^l_{1, r-1} -> N^l_{0, r} on transmission completion (paper).
        chain = make_chain(resources=3)
        targets = dict(chain.transitions((2, 1, 2)))
        assert (2, 0, 3) in targets
        assert targets[(2, 0, 3)] == chain.transmission_rate

    def test_queue_drain_boundary(self):
        # N^l_{0, r} -> N^{l-1}_{1, r-1} on service completion (paper).
        chain = make_chain(resources=3)
        targets = dict(chain.transitions((2, 0, 3)))
        assert (1, 1, 2) in targets
        assert targets[(1, 1, 2)] == 3 * chain.service_rate

    def test_total_service_rate_scales_with_busy(self):
        chain = make_chain(resources=3)
        targets = dict(chain.transitions((0, 1, 2)))
        assert targets[(0, 1, 1)] == 2 * chain.service_rate


class TestArrivalPredecessor:
    @given(level=st.integers(min_value=1, max_value=12))
    def test_predecessor_is_bijective_onto_lower_level(self, level):
        chain = make_chain(resources=3)
        lower = set(chain.states_at_level(level - 1))
        found = set()
        for state in chain.states_at_level(level):
            try:
                predecessor = chain.arrival_predecessor(state)
            except ValueError:
                continue
            # The predecessor's arrival transition must lead back here.
            arrivals = [t for t, r in chain.transitions(predecessor)
                        if r == chain.arrival_rate and chain.level(t) == level]
            assert state in arrivals
            assert predecessor not in found
            found.add(predecessor)
        assert found == lower

    def test_idle_states_have_no_predecessor(self):
        chain = make_chain(resources=3)
        for busy in range(1, 4):
            with pytest.raises(ValueError):
                chain.arrival_predecessor((0, 0, busy))


class TestQbdBlocks:
    def test_rows_sum_to_zero_in_homogeneous_part(self):
        import numpy as np
        chain = make_chain(resources=3)
        a0, a1, a2 = chain.qbd_blocks()
        assert np.allclose((a0 + a1 + a2).sum(axis=1), 0.0)

    def test_blocks_match_transition_function(self):
        import numpy as np
        chain = make_chain(resources=3)
        a0, a1, a2 = chain.qbd_blocks()
        level = chain.repeating_level + 2
        states = chain.states_at_level(level)
        below = chain.states_at_level(level - 1)
        above = chain.states_at_level(level + 1)
        for i, state in enumerate(states):
            for target, rate in chain.transitions(state):
                target_level = chain.level(target)
                if target_level == level + 1:
                    assert a0[i, above.index(target)] == pytest.approx(rate)
                elif target_level == level:
                    assert a1[i, states.index(target)] == pytest.approx(rate)
                else:
                    assert a2[i, below.index(target)] == pytest.approx(rate)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(arrival_rate=0.0, transmission_rate=1.0, service_rate=1.0, resources=1),
        dict(arrival_rate=1.0, transmission_rate=-1.0, service_rate=1.0, resources=1),
        dict(arrival_rate=1.0, transmission_rate=1.0, service_rate=0.0, resources=1),
        dict(arrival_rate=1.0, transmission_rate=1.0, service_rate=1.0, resources=0),
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SbusChain(**kwargs)
