"""Unit tests for reproducible random streams."""

import pytest

from repro.sim import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(seed=5)
    b = RandomStreams(seed=5)
    assert [a.stream("x").random() for _ in range(10)] == \
        [b.stream("x").random() for _ in range(10)]


def test_different_streams_are_independent():
    streams = RandomStreams(seed=5)
    first = [streams.stream("a").random() for _ in range(5)]
    fresh = RandomStreams(seed=5)
    _ = [fresh.stream("b").random() for _ in range(100)]  # consume another stream
    second = [fresh.stream("a").random() for _ in range(5)]
    assert first == second


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("x").random()
    b = RandomStreams(seed=2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.stream("s") is streams.stream("s")


def test_spawn_derives_stable_child():
    first = RandomStreams(seed=3).spawn("child").stream("x").random()
    second = RandomStreams(seed=3).spawn("child").stream("x").random()
    assert first == second
    parent_value = RandomStreams(seed=3).stream("x").random()
    assert first != parent_value


def test_exponential_mean_is_plausible():
    streams = RandomStreams(seed=11)
    samples = [streams.exponential("e", rate=2.0) for _ in range(20000)]
    mean = sum(samples) / len(samples)
    assert abs(mean - 0.5) < 0.02


def test_exponential_rejects_bad_rate():
    with pytest.raises(ValueError):
        RandomStreams().exponential("e", rate=0.0)


def test_uniform_bounds():
    streams = RandomStreams(seed=4)
    for _ in range(100):
        value = streams.uniform("u", 2.0, 3.0)
        assert 2.0 <= value < 3.0


def test_randint_bounds():
    streams = RandomStreams(seed=4)
    values = {streams.randint("i", 0, 3) for _ in range(200)}
    assert values == {0, 1, 2, 3}


def test_choice_and_shuffle_are_deterministic():
    a = RandomStreams(seed=9)
    b = RandomStreams(seed=9)
    items = list(range(20))
    assert a.shuffle("s", list(items)) == b.shuffle("s", list(items))
    assert a.choice("c", items) == b.choice("c", items)
