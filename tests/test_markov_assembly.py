"""Tests for the sweep-aware parametric solver fast path (markov.assembly).

The fast path's contract is *agreement*: for any chain shape and any load,
the warm-started sparse solve must land on the same answer as the dense
per-point reference solvers — the speedup comes from reusing structure,
never from accepting a different answer.  These tests pin that agreement
to 1e-10 relative across a (processors, partitions, resources, mu) grid,
exercise the warm-start bookkeeping, and check every advertised failure
mode (instability, bad rates, saturation fallback).
"""

import numpy as np
import pytest

from repro.analysis.sweep import analytic_series
from repro.config import SystemConfig
from repro.errors import AnalysisError, ConfigurationError, UnstableSystemError
from repro.markov import (
    MultibusSweepSolver,
    ParametricAssembly,
    SbusChain,
    SbusSweepSolver,
    SolverContext,
    solve_multibus,
    solve_sbus,
)

#: Loads stay below 95% of the aggregate capacity so every grid point is
#: comfortably stable and the truncation ladders stay well conditioned.
SBUS_GRID = [
    (resources, mu, load)
    for resources in (1, 2, 4, 8)
    for mu in (0.5, 1.0, 2.0)
    for load in (0.1, 0.3, 0.5, 0.7, 0.8)
]


def _sbus_capacity(resources, mu):
    """Aggregate task capacity, from the chain's own QBD drift."""
    from repro.markov.qbd import drift_condition

    chain = SbusChain(arrival_rate=1.0, transmission_rate=1.0,
                      service_rate=mu, resources=resources)
    return 1.0 - drift_condition(*chain.qbd_blocks())


class TestSbusAgreement:
    def test_grid_matches_dense_reference_within_1e10(self):
        """The ISSUE's acceptance pin: 1e-10 across the (r, mu, load) grid."""
        solvers = {}
        for resources, mu, load in SBUS_GRID:
            if load >= 0.95 * _sbus_capacity(resources, mu):
                continue
            solver = solvers.setdefault(
                (resources, mu), SbusSweepSolver(
                    transmission_rate=1.0, service_rate=mu,
                    resources=resources))
            fast = solver.solve(load)
            reference = solve_sbus(load, 1.0, mu, resources,
                                   method="truncated-direct")
            relative = (abs(fast.mean_delay - reference.mean_delay)
                        / reference.mean_delay)
            assert relative < 1e-10, (resources, mu, load, relative)
            assert fast.levels_used == reference.levels_used
            assert fast.method == "sweep-parametric"

    def test_processor_partition_grid_through_series(self):
        """Config-level agreement over (processors, partitions): the sweep
        backend and the per-point dense backend produce the same curves."""
        for triplet in ("16/2x1x1 SBUS/8", "16/4x1x1 SBUS/4",
                        "8/1x1x1 SBUS/8", "8/8x1x1 SBUS/2"):
            config = SystemConfig.parse(triplet)
            # Low intensities keep every config's curve at least partly in
            # the stable region (16 processors on two buses saturate near
            # rho = 0.125), so no config degenerates to all-None points.
            intensities = (0.05, 0.1, 0.2, 0.4, 0.6)
            fast = analytic_series(config, 1.0, intensities, solver="sweep")
            dense = analytic_series(config, 1.0, intensities, solver="dense")
            for fast_point, dense_point in zip(fast.points, dense.points):
                assert ((fast_point.normalized_delay is None)
                        == (dense_point.normalized_delay is None))
                if dense_point.normalized_delay is None:
                    continue
                # The dense series backend is matrix-geometric: a different
                # formulation entirely, so this is a cross-formulation
                # check, pinned at its agreement level.
                assert fast_point.normalized_delay == pytest.approx(
                    dense_point.normalized_delay, rel=1e-8)

    def test_order_independence(self):
        """Warm-starting must not make answers depend on sweep order."""
        loads = [0.2, 0.5, 0.7, 0.35, 0.6]
        forward = SbusSweepSolver(1.0, 1.0, 4)
        values = {load: forward.solve(load).mean_delay for load in loads}
        backward = SbusSweepSolver(1.0, 1.0, 4)
        for load in reversed(loads):
            fresh = SbusSweepSolver(1.0, 1.0, 4).solve(load).mean_delay
            swept = backward.solve(load).mean_delay
            assert swept == pytest.approx(values[load], rel=1e-12)
            assert swept == pytest.approx(fresh, rel=1e-12)


class TestMultibusAgreement:
    @pytest.mark.parametrize("buses,resources", [(2, 1), (2, 2), (3, 2)])
    def test_matches_dense_reference(self, buses, resources):
        solver = MultibusSweepSolver(1.0, 1.0, buses=buses,
                                     resources_per_bus=resources)
        for load in (0.2, 0.5, 0.9):
            if load >= 0.9 * min(buses, buses * resources * 1.0):
                continue
            fast = solver.solve(load)
            reference = solve_multibus(load, 1.0, 1.0, buses, resources)
            relative = (abs(fast.mean_delay - reference.mean_delay)
                        / reference.mean_delay)
            assert relative < 1e-9, (buses, resources, load, relative)


class TestWarmStartMachinery:
    def test_stats_show_amortization(self):
        """A fine sweep must warm-start most points, not refactor each."""
        solver = SbusSweepSolver(1.0, 1.0, 4)
        loads = np.linspace(0.1, 0.7, 40)
        for load in loads:
            solver.solve(float(load))
        stats = solver.stats()
        assert stats, "no per-level stats recorded"
        base_level = min(stats)
        base = stats[base_level]
        assert base.points == len(loads)
        assert base.warm_accepts > 0
        assert base.factorizations < base.points

    def test_assembly_reuse_across_points(self):
        """The same per-level assembly objects serve every sweep point."""
        solver = SbusSweepSolver(1.0, 1.0, 2)
        solver.solve(0.3)
        first = dict(solver._levels)
        solver.solve(0.5)
        for level, cached in first.items():
            assert solver._levels[level] is cached

    def test_seed_rejects_wrong_length(self):
        solver = SbusSweepSolver(1.0, 1.0, 2)
        solver.solve(0.3)
        level = solver._levels[min(solver._levels)]
        with pytest.raises(ConfigurationError):
            level.solver.seed(np.ones(3))


class TestParametricAssembly:
    def _assembly(self, resources=2):
        template = SbusChain(arrival_rate=1.0, transmission_rate=1.0,
                             service_rate=1.0, resources=resources)
        return ParametricAssembly.explore(
            template.completion_transitions,
            template.arrival_transitions,
            [(0, 0, 0)],
            state_filter=lambda state: template.level(state) <= 12,
        ), template

    def test_reduced_system_matches_dense_generator(self):
        assembly, template = self._assembly()
        lam = 0.6
        chain = SbusChain(arrival_rate=lam, transmission_rate=1.0,
                          service_rate=1.0, resources=2)
        index = {state: i for i, state in enumerate(assembly.states)}
        size = assembly.num_states
        dense = np.zeros((size, size))
        for i, state in enumerate(assembly.states):
            for target, rate in chain.transitions(state):
                if target in index:
                    dense[i, index[target]] += rate
                    dense[i, i] -= rate
        transposed = dense.T
        matrix, rhs = assembly.reduced_system(lam)
        np.testing.assert_allclose(matrix.toarray(), transposed[1:, 1:],
                                   atol=1e-14)
        np.testing.assert_allclose(rhs, -transposed[1:, 0], atol=1e-14)

    def test_rejects_nonpositive_arrival(self):
        assembly, _template = self._assembly()
        with pytest.raises(ConfigurationError):
            assembly.reduced_system(0.0)
        with pytest.raises(ConfigurationError):
            assembly.reduced_system(-1.0)

    def test_value_vector_matches_states(self):
        assembly, template = self._assembly()
        queued = assembly.value_vector(
            lambda state: float(template.queued_tasks(state)))
        assert queued.shape == (assembly.num_states,)
        assert queued[0] == 0.0


class TestFailureModes:
    def test_unstable_load_raises(self):
        solver = SbusSweepSolver(1.0, 1.0, 4)
        with pytest.raises(UnstableSystemError):
            solver.solve(1.5)

    def test_saturation_falls_back_to_matrix_geometric(self):
        """Past the ladder's hard limit the solver must still answer."""
        solver = SbusSweepSolver(1.0, 1.0, 4, hard_limit=64)
        solution = solver.solve(0.97)
        reference = solve_sbus(0.97, 1.0, 1.0, 4, method="matrix-geometric")
        assert solution.method == "matrix-geometric"
        assert solution.mean_delay == pytest.approx(reference.mean_delay,
                                                    rel=1e-12)

    def test_unknown_series_backend_rejected(self):
        with pytest.raises(ValueError):
            analytic_series("16/2x1x1 SBUS/8", 1.0, (0.2,), solver="fancy")


class TestSolverContext:
    def test_reuses_solver_per_chain_shape(self):
        context = SolverContext()
        first = context.sbus_solver(1.0, 1.0, 4)
        again = context.sbus_solver(1.0, 1.0, 4)
        other = context.sbus_solver(1.0, 2.0, 4)
        assert first is again
        assert first is not other

    def test_multibus_solvers_cached_independently(self):
        context = SolverContext()
        first = context.multibus_solver(1.0, 1.0, 2, 2)
        assert context.multibus_solver(1.0, 1.0, 2, 2) is first
        assert context.multibus_solver(1.0, 1.0, 3, 2) is not first
