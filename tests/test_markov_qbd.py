"""Unit tests for the QBD rate-matrix machinery."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.markov import drift_condition, geometric_tail_sums, solve_rate_matrix


def mm1_blocks(arrival=0.5, service=1.0):
    """M/M/1 as a 1-phase QBD."""
    a0 = np.array([[arrival]])
    a2 = np.array([[service]])
    a1 = np.array([[-(arrival + service)]])
    return a0, a1, a2


class TestRateMatrix:
    def test_mm1_rate_matrix_is_rho(self):
        a0, a1, a2 = mm1_blocks(0.5, 1.0)
        r = solve_rate_matrix(a0, a1, a2)
        assert r[0, 0] == pytest.approx(0.5)

    def test_solves_quadratic_exactly(self):
        from repro.markov import SbusChain
        chain = SbusChain(arrival_rate=1.0, transmission_rate=2.0,
                          service_rate=0.7, resources=3)
        a0, a1, a2 = chain.qbd_blocks()
        r = solve_rate_matrix(a0, a1, a2)
        residual = a0 + r @ a1 + r @ r @ a2
        assert np.max(np.abs(residual)) < 1e-10

    def test_rate_matrix_nonnegative(self):
        from repro.markov import SbusChain
        chain = SbusChain(arrival_rate=0.5, transmission_rate=1.0,
                          service_rate=0.5, resources=2)
        r = solve_rate_matrix(*chain.qbd_blocks())
        assert np.min(r) >= -1e-12

    def test_bus_stall_lowers_capacity(self):
        """The bus idles while all resources are busy, so capacity is below
        min(mu_n, r mu_s): for mu_n=1, mu_s=0.5, r=2 it is 0.6, not 1.0."""
        from repro.markov import SbusChain
        chain = SbusChain(arrival_rate=0.59, transmission_rate=1.0,
                          service_rate=0.5, resources=2)
        drift = drift_condition(*chain.qbd_blocks())
        assert drift == pytest.approx(0.59 - 0.6, abs=1e-9)
        overloaded = SbusChain(arrival_rate=0.61, transmission_rate=1.0,
                               service_rate=0.5, resources=2)
        with pytest.raises(AnalysisError):
            solve_rate_matrix(*overloaded.qbd_blocks())

    def test_unstable_rejected(self):
        a0, a1, a2 = mm1_blocks(arrival=2.0, service=1.0)
        with pytest.raises(AnalysisError):
            solve_rate_matrix(a0, a1, a2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            solve_rate_matrix(np.eye(2), np.eye(3), np.eye(2))


class TestDrift:
    def test_mm1_drift(self):
        a0, a1, a2 = mm1_blocks(0.5, 1.0)
        assert drift_condition(a0, a1, a2) == pytest.approx(-0.5)

    def test_positive_drift_when_overloaded(self):
        a0, a1, a2 = mm1_blocks(arrival=3.0, service=1.0)
        assert drift_condition(a0, a1, a2) > 0


class TestTailSums:
    def test_geometric_mass(self):
        # Scalar case: pi (I - R)^-1 = pi / (1 - rho).
        boundary = np.array([0.3])
        r = np.array([[0.5]])
        mass, first_moment = geometric_tail_sums(boundary, r)
        assert mass == pytest.approx(0.3 / 0.5)
        # sum j rho^j = rho / (1-rho)^2
        assert first_moment == pytest.approx(0.3 * 0.5 / 0.25)
