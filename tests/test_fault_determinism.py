"""Reproducibility of fault-injected simulations.

The same seed and the same fault configuration must produce identical
:class:`~repro.core.metrics.SimulationResult` objects across runs, for all
three network classes — both with stochastic fault processes and with
explicit schedules.  Fault streams are independent of workload streams, so
the healthy run is also insensitive to attaching never-firing models.
"""

import math

import pytest

from repro.config import SystemConfig
from repro.core.system import simulate
from repro.faults import (
    BusFault,
    CellFault,
    FaultConfig,
    FaultSchedule,
    InterchangeFault,
    ResourceFault,
    RetryPolicy,
)
from repro.workload import Workload

WORKLOAD = Workload(arrival_rate=0.05, transmission_rate=1.0,
                    service_rate=0.1)

FABRIC_CASES = [
    ("8/2x1x1 SBUS/4", BusFault(mttf=150.0, mttr=25.0)),
    ("8/1x8x8 XBAR/1", CellFault(mttf=400.0, mttr=30.0)),
    ("8/1x8x8 OMEGA/1", InterchangeFault(mttf=250.0, mttr=25.0)),
]


def _run(triplet, faults, seed):
    config = SystemConfig.parse(triplet).with_faults(faults)
    return simulate(config, WORKLOAD, horizon=1_500.0, warmup=100.0,
                    seed=seed)


@pytest.mark.parametrize("triplet,model", FABRIC_CASES)
def test_same_seed_same_faults_identical_results(triplet, model):
    faults = FaultConfig(models=(model,),
                         retry=RetryPolicy(max_retries=5, task_timeout=300.0))
    first = _run(triplet, faults, seed=13)
    second = _run(triplet, faults, seed=13)
    assert first == second
    assert first.availability.total_failures == \
        second.availability.total_failures
    assert first.availability.total_downtime == \
        pytest.approx(second.availability.total_downtime, rel=0.0)


@pytest.mark.parametrize("triplet,model", FABRIC_CASES)
def test_different_seed_differs(triplet, model):
    faults = FaultConfig(models=(model,), retry=RetryPolicy(max_retries=5))
    assert _run(triplet, faults, seed=13) != _run(triplet, faults, seed=14)


def test_explicit_schedule_is_deterministic():
    schedule = FaultSchedule.of((200.0, "bus", (0, 0), "down"),
                                (260.0, "bus", (0, 0), "up"),
                                (700.0, "bus", (1, 0), "down"),
                                (780.0, "bus", (1, 0), "up"))
    faults = FaultConfig(schedule=schedule, retry=RetryPolicy(jitter=0.25))
    first = _run("8/2x1x1 SBUS/4", faults, seed=21)
    second = _run("8/2x1x1 SBUS/4", faults, seed=21)
    assert first == second
    assert first.availability.total_failures == 2


@pytest.mark.parametrize("triplet,model_class", [
    ("8/2x1x1 SBUS/4", ResourceFault),
    ("8/1x8x8 XBAR/1", CellFault),
    ("8/1x8x8 OMEGA/1", InterchangeFault),
])
def test_idle_fault_models_reproduce_healthy_run(triplet, model_class):
    """mttf = inf attaches the machinery without perturbing the physics."""
    healthy = simulate(SystemConfig.parse(triplet), WORKLOAD,
                       horizon=1_500.0, warmup=100.0, seed=5)
    faults = FaultConfig(models=(model_class(mttf=math.inf, mttr=1.0),))
    shadow = _run(triplet, faults, seed=5)
    assert shadow == healthy
