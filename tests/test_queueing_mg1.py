"""Tests for the M/G/1 queue (Pollaczek-Khinchine)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnstableSystemError
from repro.queueing import (
    mg1_metrics,
    mg1_metrics_for_distribution,
    mm1_metrics,
)


class TestPollaczekKhinchine:
    def test_exponential_reduces_to_mm1(self):
        pk = mg1_metrics(0.7, 1.0, service_cv2=1.0)
        mm1 = mm1_metrics(0.7, 1.0)
        assert pk.mean_waiting_time == pytest.approx(mm1.mean_waiting_time)
        assert pk.mean_number_in_system == pytest.approx(
            mm1.mean_number_in_system)

    def test_deterministic_halves_the_wait(self):
        deterministic = mg1_metrics(0.7, 1.0, service_cv2=0.0)
        exponential = mg1_metrics(0.7, 1.0, service_cv2=1.0)
        assert deterministic.mean_waiting_time == pytest.approx(
            exponential.mean_waiting_time / 2.0)

    def test_variability_monotone(self):
        waits = [mg1_metrics(0.5, 1.0, cv2).mean_waiting_time
                 for cv2 in (0.0, 1.0, 4.0)]
        assert waits == sorted(waits)

    def test_unstable_rejected(self):
        with pytest.raises(UnstableSystemError):
            mg1_metrics(1.0, 1.0, 1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            mg1_metrics(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            mg1_metrics(0.5, 1.0, -0.1)

    @given(rho=st.floats(0.05, 0.9), cv2=st.floats(0.0, 8.0))
    def test_littles_law(self, rho, cv2):
        metrics = mg1_metrics(rho, 1.0, cv2)
        assert metrics.mean_number_in_queue == pytest.approx(
            metrics.arrival_rate * metrics.mean_waiting_time)


class TestDistributionLookup:
    def test_known_distributions(self):
        for name in ("deterministic", "exponential", "hyperexponential"):
            metrics = mg1_metrics_for_distribution(0.5, 1.0, name)
            assert metrics.mean_waiting_time > 0

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            mg1_metrics_for_distribution(0.5, 1.0, "weibull")

    def test_matches_simulated_private_bus(self):
        """P-K predicts the simulator's private-bus wait under each
        transmission law (single processor, plentiful resources: M/G/1
        on the bus)."""
        from repro.core import simulate
        from repro.workload import Workload
        for distribution in ("deterministic", "exponential", "hyperexponential"):
            workload = Workload(arrival_rate=0.6, transmission_rate=1.0,
                                service_rate=50.0,
                                transmission_distribution=distribution)
            result = simulate("4/4x1x1 SBUS/inf", workload,
                              horizon=60_000.0, warmup=6_000.0, seed=9)
            expected = mg1_metrics_for_distribution(0.6, 1.0, distribution)
            assert result.mean_queueing_delay == pytest.approx(
                expected.mean_waiting_time, rel=0.15)
