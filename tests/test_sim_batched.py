"""Tests for the lockstep batched replication engine.

The engine's single load-bearing property is *bit-identity*: replication k
of a batched run must equal the scalar engine run with the same seed, to
the last bit of the mean-delay estimate.  Everything else — the vectorized
stream tables, the sweep-point integration, the CRN comparison — leans on
that invariant, so these tests pin it over a randomized configuration grid
and then check the surrounding plumbing.
"""

import math
import random

import pytest

from repro.config import SystemConfig
from repro.core.system import simulate
from repro.errors import ConfigurationError
from repro.faults.models import CellFault, FaultConfig, FaultSchedule
from repro.sim import (
    BatchedReplicationEngine,
    MegaBatchEngine,
    VariateTable,
    batched_replication_delays,
    batched_unsupported_reason,
    megabatch_figure_delays,
    spawn_seed,
    supports_batched,
    uniform_block_source,
)
from repro.sim.rng import RngStream
from repro.workload.arrivals import Workload, sample_time


def _random_cases(count, master_seed=7):
    """Randomized crossbar (config, workload) grid across the gate."""
    rng = random.Random(master_seed)
    cases = []
    for _ in range(count):
        processors = rng.choice([2, 4, 8, 12, 16])
        partitions = rng.choice([1, 2])
        if processors % partitions:
            partitions = 1
        buses = rng.choice([1, 2, 4, 8])
        resources = rng.choice([1, 2, 3])
        rho = rng.choice([0.02, 0.05, 0.08, 0.12])
        distribution = rng.choice(["exponential", "hyperexponential"])
        config = SystemConfig.parse(
            f"{processors}/{partitions}x{processors // partitions}x{buses} "
            f"XBAR/{resources}")
        workload = Workload(rho, 1.0, 0.1,
                            service_distribution=distribution)
        cases.append((config, workload))
    return cases


def _random_bus_cases(count, master_seed=13):
    """Randomized single-bus grid: shared and private buses, finite pools."""
    rng = random.Random(master_seed)
    cases = []
    for _ in range(count):
        processors = rng.choice([2, 4, 8, 12, 16])
        partitions = rng.choice([1, 2, 4, processors])
        if processors % partitions:
            partitions = 1
        resources = rng.choice([1, 2, 3])
        rho = rng.choice([0.02, 0.05, 0.08, 0.12])
        distribution = rng.choice(["exponential", "hyperexponential"])
        config = SystemConfig.parse(
            f"{processors}/{partitions}x1x1 SBUS/{resources}")
        workload = Workload(rho, 1.0, 0.1,
                            service_distribution=distribution)
        cases.append((config, workload))
    return cases


def _random_multistage_cases(count, master_seed=17):
    """Randomized multistage grid spanning all three wirings."""
    rng = random.Random(master_seed)
    cases = []
    for _ in range(count):
        partitions, size = rng.choice(
            [(1, 4), (1, 8), (1, 16), (2, 4), (2, 8), (4, 4)])
        kind = rng.choice(["OMEGA", "CUBE", "BASELINE"])
        resources = rng.choice([1, 2, 3])
        rho = rng.choice([0.02, 0.05, 0.08, 0.12])
        distribution = rng.choice(["exponential", "hyperexponential"])
        config = SystemConfig.parse(
            f"{partitions * size}/{partitions}x{size}x{size} "
            f"{kind}/{resources}")
        workload = Workload(rho, 1.0, 0.1,
                            service_distribution=distribution)
        cases.append((config, workload))
    return cases


def _check_lockstep_grid(cases, seed_base):
    """Per-replication delays must equal scalar ``simulate`` bit for bit."""
    for index, (config, workload) in enumerate(cases):
        seeds = [seed_base + index * 10 + k for k in range(4)]
        horizon, warmup = 400.0, 50.0
        batched = batched_replication_delays(
            config, workload, horizon=horizon, warmup=warmup, seeds=seeds)
        for k, seed in enumerate(seeds):
            scalar = simulate(config, workload, horizon=horizon,
                              warmup=warmup,
                              seed=seed).mean_queueing_delay
            if math.isnan(scalar):
                assert math.isnan(batched[k])
            else:
                assert batched[k] == scalar, (
                    f"replication {k} of {config} diverged")


class TestLockstepBitIdentity:
    def test_randomized_grid_matches_scalar_engine(self):
        _check_lockstep_grid(_random_cases(8), seed_base=2000)

    def test_randomized_bus_grid_matches_scalar_engine(self):
        """The widened gate: batched single-bus grants match scalar."""
        _check_lockstep_grid(_random_bus_cases(8), seed_base=2100)

    def test_randomized_multistage_grid_matches_scalar_engine(self):
        """The widened gate: plane-routed Omega/cube/baseline match scalar."""
        _check_lockstep_grid(_random_multistage_cases(8), seed_base=2200)

    def test_result_carries_counts_and_window(self):
        config = SystemConfig.parse("4/1x4x2 XBAR/2")
        workload = Workload(0.05, 1.0, 0.1)
        engine = BatchedReplicationEngine(config, workload, seeds=[1, 2, 3])
        result = engine.run(horizon=500.0, warmup=50.0)
        assert result.seeds == (1, 2, 3)
        assert len(result.mean_delays) == 3
        assert all(count >= 0 for count in result.delay_counts)
        assert all(done > 0 for done in result.completed)
        assert result.simulated_time == 500.0
        assert result.measurement_start == 50.0
        with pytest.raises(ConfigurationError):
            engine.run(horizon=500.0, warmup=50.0)  # single-shot, like scalar

    def test_scope_gate(self):
        workload = Workload(0.05, 1.0, 0.1)
        # Every fabric family in the grammar has a dispatch kernel now;
        # what gates a model is a *property*, never the fabric alone.
        assert supports_batched("16/1x16x8 XBAR/2", workload)
        assert supports_batched("16/1x16x16 OMEGA/2", workload)
        assert supports_batched("16/4x4x4 CUBE/1", workload)
        assert supports_batched("8/1x8x8 BASELINE/2", workload)
        assert supports_batched("16/16x1x1 SBUS/2", workload)
        assert not supports_batched("16/16x1x1 SBUS/inf", workload)
        assert not supports_batched("16/1x16x8 XBAR/2", workload,
                                    arbitration="random")
        # Deterministic *service* is in scope (ties stay measure-zero);
        # deterministic transmission or interarrival lattices timestamps
        # and stays gated.
        deterministic = Workload(0.05, 1.0, 0.1,
                                 service_distribution="deterministic")
        assert supports_batched("16/1x16x8 XBAR/2", deterministic)
        lattice = Workload(0.05, 1.0, 0.1,
                           transmission_distribution="deterministic")
        assert not supports_batched("16/1x16x8 XBAR/2", lattice)
        with pytest.raises(ConfigurationError):
            BatchedReplicationEngine("16/16x1x1 SBUS/inf", workload, seeds=[1])
        with pytest.raises(ConfigurationError):
            BatchedReplicationEngine("16/1x16x8 XBAR/2", workload, seeds=[])


def _assert_same_delay(left, right, context=""):
    if math.isnan(left):
        assert math.isnan(right), context
    else:
        assert left == right, context


def _check_megabatch_grid(cases, seed_base):
    """Mega-batch == per-point batched == scalar, bit for bit.

    Each case becomes a 3-point "curve" (three loads of the same
    configuration and distributions) with 3 replications per point —
    the full (point, replication) grid is checked against both the
    per-point batched engine and the scalar engine.
    """
    for index, (config, workload) in enumerate(cases):
        rhos = [workload.arrival_rate * scale
                for scale in (0.5, 1.0, 1.5)]
        workloads = [Workload(rho, 1.0, 0.1,
                              service_distribution=
                              workload.service_distribution)
                     for rho in rhos]
        groups = [[seed_base + index * 100 + point * 10 + k
                   for k in range(3)]
                  for point in range(len(workloads))]
        horizon, warmup = 400.0, 50.0
        mega = megabatch_figure_delays(config, workloads, horizon=horizon,
                                       warmup=warmup, seed_groups=groups)
        for point, point_workload in enumerate(workloads):
            per_point = batched_replication_delays(
                config, point_workload, horizon=horizon, warmup=warmup,
                seeds=groups[point])
            for k, seed in enumerate(groups[point]):
                _assert_same_delay(per_point[k], mega[point][k],
                                   f"case {index} point {point} rep {k}")
                scalar = simulate(config, point_workload, horizon=horizon,
                                  warmup=warmup,
                                  seed=seed).mean_queueing_delay
                _assert_same_delay(scalar, mega[point][k],
                                   f"case {index} point {point} rep {k}")


class TestMegaBatch:
    def test_randomized_grid_matches_per_point_and_scalar(self):
        _check_megabatch_grid(_random_cases(4, master_seed=11),
                              seed_base=5000)

    def test_randomized_bus_grid_matches_per_point_and_scalar(self):
        """The widened gate: whole single-bus curves in one mega-batch."""
        _check_megabatch_grid(_random_bus_cases(3, master_seed=19),
                              seed_base=6000)

    def test_randomized_multistage_grid_matches_per_point_and_scalar(self):
        """The widened gate: whole multistage curves in one mega-batch."""
        _check_megabatch_grid(_random_multistage_cases(3, master_seed=23),
                              seed_base=7000)

    def test_deterministic_service_matches_scalar(self):
        """The widened gate: deterministic service runs in lockstep."""
        config = SystemConfig.parse("8/2x4x4 XBAR/2")
        workload = Workload(0.06, 1.0, 0.1,
                            service_distribution="deterministic")
        assert supports_batched(config, workload)
        seeds = [901, 902, 903, 904]
        batched = batched_replication_delays(config, workload, horizon=500.0,
                                             warmup=50.0, seeds=seeds)
        for k, seed in enumerate(seeds):
            scalar = simulate(config, workload, horizon=500.0, warmup=50.0,
                              seed=seed).mean_queueing_delay
            _assert_same_delay(scalar, batched[k], f"replication {k}")

    def test_static_cell_faults_match_scalar(self):
        """The widened gate: a statically degraded fabric runs masked."""
        schedule = FaultSchedule.of(
            (0.0, "cell", (0, (0, 0)), "down"),
            (0.0, "cell", (0, (1, 2)), "down"),
            (0.0, "cell", (1, (3, 1)), "down"))
        config = SystemConfig.parse("8/2x4x4 XBAR/2").with_faults(
            FaultConfig(schedule=schedule))
        workload = Workload(0.06, 1.0, 0.1)
        assert batched_unsupported_reason(config, workload) is None
        seeds = [911, 912, 913]
        batched = batched_replication_delays(config, workload, horizon=500.0,
                                             warmup=50.0, seeds=seeds)
        healthy = batched_replication_delays(
            config.with_faults(None), workload, horizon=500.0, warmup=50.0,
            seeds=seeds)
        assert batched != healthy  # the dead cells must actually bite
        for k, seed in enumerate(seeds):
            scalar = simulate(config, workload, horizon=500.0, warmup=50.0,
                              seed=seed).mean_queueing_delay
            _assert_same_delay(scalar, batched[k], f"replication {k}")

    def test_unsupported_reason_names_the_gate(self):
        workload = Workload(0.05, 1.0, 0.1)
        for triplet in ("16/1x16x8 XBAR/2", "16/1x16x16 OMEGA/2",
                        "16/4x4x4 CUBE/1", "8/1x8x8 BASELINE/2",
                        "16/16x1x1 SBUS/2"):
            assert batched_unsupported_reason(triplet, workload) is None
        assert "arbitration" in batched_unsupported_reason(
            "16/1x16x8 XBAR/2", workload, arbitration="random")
        assert "infinite resource pool" in batched_unsupported_reason(
            "16/16x1x1 SBUS/inf", workload)
        lattice = Workload(0.05, 1.0, 0.1,
                           interarrival_distribution="deterministic")
        assert "interarrival" in batched_unsupported_reason(
            "16/1x16x8 XBAR/2", lattice)
        stochastic = SystemConfig.parse("16/1x16x8 XBAR/2").with_faults(
            FaultConfig(models=(CellFault(mttf=100.0, mttr=10.0),)))
        assert "stochastic" in batched_unsupported_reason(stochastic,
                                                          workload)
        dynamic = SystemConfig.parse("16/1x16x8 XBAR/2").with_faults(
            FaultConfig(schedule=FaultSchedule.of(
                (5.0, "cell", (0, (0, 0)), "down"))))
        assert "dynamic" in batched_unsupported_reason(dynamic, workload)
        faulted_omega = SystemConfig.parse("16/1x16x16 OMEGA/2").with_faults(
            FaultConfig(schedule=FaultSchedule.of(
                (0.0, "cell", (0, (0, 0)), "down"))))
        assert "OMEGA" in batched_unsupported_reason(faulted_omega, workload)

    def test_every_reason_names_the_blocking_property(self):
        """Regression for the stale "XBAR fabrics only" phrasing.

        Each gated combination's reason must name the property that
        actually blocks it — never a fabric family that now has a
        dispatch kernel, and never the old blanket scope claim.
        """
        workload = Workload(0.05, 1.0, 0.1)
        faulted = FaultConfig(schedule=FaultSchedule.of(
            (0.0, "cell", (0, (0, 0)), "down")))
        gated = [
            ("16/16x1x1 SBUS/inf", workload, {}, "infinite resource pool"),
            ("16/1x16x8 XBAR/2", workload, {"arbitration": "random"},
             "'random' arbitration"),
            ("16/1x16x8 XBAR/2", workload, {"arbitration": "fifo"},
             "'fifo' arbitration"),
            ("16/1x16x8 XBAR/2",
             Workload(0.05, 1.0, 0.1,
                      transmission_distribution="deterministic"),
             {}, "'deterministic' transmission distribution"),
            ("16/1x16x8 XBAR/2",
             Workload(0.05, 1.0, 0.1,
                      interarrival_distribution="deterministic"),
             {}, "'deterministic' interarrival distribution"),
            (SystemConfig.parse("16/1x16x16 OMEGA/2").with_faults(faulted),
             workload, {}, "fault schedule on a OMEGA fabric"),
            (SystemConfig.parse("16/16x1x1 SBUS/2").with_faults(faulted),
             workload, {}, "fault schedule on a SBUS fabric"),
        ]
        for config, case_workload, kwargs, needle in gated:
            reason = batched_unsupported_reason(config, case_workload,
                                                **kwargs)
            assert reason is not None, f"{config} should be gated"
            assert needle in reason, f"{reason!r} must name {needle!r}"
            assert "fabrics only" not in reason

    def test_point_of_row_maps_rows_to_points(self):
        config = SystemConfig.parse("4/1x4x2 XBAR/2")
        workloads = [Workload(0.03, 1.0, 0.1), Workload(0.05, 1.0, 0.1)]
        engine = MegaBatchEngine(config, workloads,
                                 seed_groups=[[1, 2, 3], [4, 5]])
        assert engine.point_of_row.tolist() == [0, 0, 0, 1, 1]
        assert engine.seed_groups == ((1, 2, 3), (4, 5))

    def test_megabatch_validation(self):
        config = SystemConfig.parse("4/1x4x2 XBAR/2")
        workloads = [Workload(0.03, 1.0, 0.1), Workload(0.05, 1.0, 0.1)]
        with pytest.raises(ConfigurationError):
            MegaBatchEngine(config, [], seed_groups=[])
        with pytest.raises(ConfigurationError):
            MegaBatchEngine(config, workloads, seed_groups=[[1]])
        with pytest.raises(ConfigurationError):
            MegaBatchEngine(config, workloads, seed_groups=[[1], []])
        mixed = [Workload(0.03, 1.0, 0.1),
                 Workload(0.05, 1.0, 0.1,
                          service_distribution="deterministic")]
        with pytest.raises(ConfigurationError):
            MegaBatchEngine(config, mixed, seed_groups=[[1], [2]])


class TestVariateStreams:
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_uniform_block_sources_agree_with_random_random(self, vectorized):
        source = uniform_block_source(1234, vectorized)
        reference = random.Random(1234)
        drawn = source(100) + source(37) + source(256)
        assert drawn == [reference.random() for _ in range(393)]

    @pytest.mark.parametrize("distribution", ["exponential",
                                              "hyperexponential"])
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_variate_table_matches_sample_time(self, distribution, vectorized):
        """Row s of the table draws exactly the scalar stream's variates."""
        seeds = [spawn_seed(9, "arrivals-0"), spawn_seed(9, "service-1")]
        table = VariateTable(seeds, rate=0.4, distribution=distribution,
                             block=16, vectorized=vectorized)
        for row, seed in enumerate(seeds):
            stream = RngStream(seed)
            for _ in range(40):
                expected = sample_time(stream, 0.4, distribution)
                assert table.draw_one(row) == expected

    def test_variate_table_validation(self):
        with pytest.raises(ConfigurationError):
            VariateTable([1], rate=0.0, distribution="exponential")
        with pytest.raises(ConfigurationError):
            VariateTable([1], rate=1.0, distribution="weibull")
        with pytest.raises(ConfigurationError):
            VariateTable([1], rate=1.0, distribution="exponential", block=3)
        with pytest.raises(ConfigurationError):
            VariateTable([1, 2], rate=[1.0], distribution="exponential")

    def test_per_row_rates_match_scalar_streams(self):
        """The mega-batch shape: one table, a different rate per row."""
        seeds = [spawn_seed(3, "arrivals-0"), spawn_seed(3, "arrivals-1")]
        rates = [0.25, 0.8]
        table = VariateTable(seeds, rate=rates, distribution="exponential",
                             block=16)
        for row, (seed, rate) in enumerate(zip(seeds, rates)):
            stream = RngStream(seed)
            for _ in range(20):
                expected = sample_time(stream, rate, "exponential")
                assert table.draw_one(row) == expected

    def test_deterministic_rows_draw_no_uniforms(self):
        table = VariateTable([7], rate=0.5, distribution="deterministic",
                             block=8)
        for _ in range(20):
            assert table.draw_one(0) == 2.0
        # sample_time's contract: deterministic draws touch no randomness,
        # so the equivalent scalar stream stays untouched too.
        stream = RngStream(7)
        before = stream.random()
        replay = RngStream(7)
        assert sample_time(replay, 0.5, "deterministic") == 2.0
        assert replay.random() == before


class TestVariateCrossover:
    def test_override_resolution(self, monkeypatch):
        from repro.sim.batched import (_VECTORIZED_REFILL_CROSSOVER,
                                       variate_refill_crossover)

        monkeypatch.delenv("REPRO_VARIATE_BLOCK", raising=False)
        assert variate_refill_crossover() == _VECTORIZED_REFILL_CROSSOVER
        monkeypatch.setenv("REPRO_VARIATE_BLOCK", "128")
        assert variate_refill_crossover() == 128
        assert variate_refill_crossover(override=7) == 7
        monkeypatch.setenv("REPRO_VARIATE_BLOCK", "soon")
        with pytest.raises(ConfigurationError):
            variate_refill_crossover()
        with pytest.raises(ConfigurationError):
            variate_refill_crossover(override=-1)

    def test_crossover_choice_is_bit_identical(self, monkeypatch):
        """Both refill backends emit the same variates; the knob cannot
        change results, only where generator construction is paid."""
        config = SystemConfig.parse("4/1x4x2 XBAR/2")
        workload = Workload(0.05, 1.0, 0.1)
        seeds = [21, 22]
        monkeypatch.delenv("REPRO_VARIATE_BLOCK", raising=False)
        default = BatchedReplicationEngine(
            config, workload, seeds).run(400.0, 40.0)
        monkeypatch.setenv("REPRO_VARIATE_BLOCK", "0")
        forced_numpy = BatchedReplicationEngine(
            config, workload, seeds).run(400.0, 40.0)
        monkeypatch.delenv("REPRO_VARIATE_BLOCK")
        forced_scalar = BatchedReplicationEngine(
            config, workload, seeds, crossover=10 ** 9).run(400.0, 40.0)
        assert all(not math.isnan(d) for d in default.mean_delays)
        assert default.mean_delays == forced_numpy.mean_delays
        assert default.mean_delays == forced_scalar.mean_delays


class TestSweepPointEngine:
    def test_unknown_engine_rejected(self):
        from repro.analysis.sweep import simulated_point

        with pytest.raises(ConfigurationError):
            simulated_point("16/1x16x8 XBAR/2", 0.1, 0.5, engine="warp")

    def test_batched_point_reports_replication_interval(self):
        from repro.analysis.sweep import simulated_point

        point = simulated_point("16/1x16x8 XBAR/2", 0.1, 0.4, horizon=2_000.0,
                                seed=5, engine="batched")
        assert point.normalized_delay is not None
        assert point.ci_halfwidth is not None and point.ci_halfwidth > 0

    def test_batched_point_falls_back_outside_scope(self):
        from repro.analysis.sweep import simulated_point

        # An infinite private-resource pool keeps the bus model gated, so
        # the batched request must quietly produce the scalar point.
        scalar = simulated_point("16/16x1x1 SBUS/inf", 0.1, 0.4,
                                 horizon=1_500.0, seed=5)
        batched = simulated_point("16/16x1x1 SBUS/inf", 0.1, 0.4,
                                  horizon=1_500.0, seed=5, engine="batched")
        assert batched == scalar

    def test_batched_point_runs_new_fabrics(self):
        """Omega and single-bus points run batched, matching scalar seeds
        replication for replication (same spawned seed names)."""
        from repro.analysis.sweep import simulated_point

        for triplet, intensity in (("8/1x8x8 OMEGA/2", 0.4),
                                   ("16/4x1x1 SBUS/2", 0.2)):
            point = simulated_point(triplet, 0.1, intensity, horizon=1_500.0,
                                    seed=5, engine="batched")
            assert point.normalized_delay is not None
            assert point.ci_halfwidth is not None and point.ci_halfwidth > 0

    def test_auto_engine_matches_batched_in_scope(self):
        from repro.analysis.sweep import simulated_point

        for triplet in ("16/1x16x8 XBAR/2", "8/1x8x8 OMEGA/2"):
            batched = simulated_point(triplet, 0.1, 0.4, horizon=1_000.0,
                                      seed=5, engine="batched")
            auto = simulated_point(triplet, 0.1, 0.4, horizon=1_000.0,
                                   seed=5, engine="auto")
            assert auto == batched

    def test_auto_engine_falls_back_to_scalar(self):
        from repro.analysis.sweep import simulated_point

        scalar = simulated_point("16/16x1x1 SBUS/inf", 0.1, 0.4,
                                 horizon=1_000.0, seed=5)
        auto = simulated_point("16/16x1x1 SBUS/inf", 0.1, 0.4,
                               horizon=1_000.0, seed=5, engine="auto")
        assert auto == scalar

    def test_saturated_point_short_circuits(self):
        from repro.analysis.sweep import simulated_point

        point = simulated_point("16/1x16x8 XBAR/2", 0.1, 5.0, engine="batched")
        assert point.normalized_delay is None


class TestCommonRandomNumbers:
    def test_crn_halfwidth_no_wider_than_unpaired(self):
        """The acceptance pin: pairing cancels common workload noise."""
        from repro.analysis.replication import compare_with_replications
        from repro.analysis.sweep import workload_at

        workload = workload_at(0.5, 0.1)
        shared = dict(workload=workload, horizon=1_500.0, warmup=150.0,
                      replications=8, base_seed=100, engine="batched")
        first, second = "16/1x16x8 XBAR/2", "16/1x16x16 XBAR/1"
        _, paired_half, _ = compare_with_replications(
            first, second, crn=True, **shared)
        _, unpaired_half, _ = compare_with_replications(
            first, second, crn=False, **shared)
        assert paired_half <= unpaired_half

    def test_crn_comparison_engines_agree(self):
        """Batched CRN comparison equals the scalar one bit for bit."""
        from repro.analysis.replication import compare_with_replications
        from repro.analysis.sweep import workload_at

        workload = workload_at(0.4, 0.1)
        shared = dict(workload=workload, horizon=800.0, warmup=80.0,
                      replications=4, base_seed=50, crn=True)
        first, second = "8/1x8x4 XBAR/2", "8/1x8x8 XBAR/1"
        scalar = compare_with_replications(first, second, engine="scalar",
                                           **shared)
        batched = compare_with_replications(first, second, engine="batched",
                                            **shared)
        assert scalar[0] == batched[0]
        assert scalar[1] == batched[1]


class TestBatchedEvaluator:
    def test_batched_wave_matches_scalar_units(self):
        """replication-delay-batched == one replication-delay per seed."""
        from repro.runner.evaluators import get_evaluator

        params = {
            "config": "8/1x8x4 XBAR/2",
            "arrival_rate": 0.05, "transmission_rate": 1.0,
            "service_rate": 0.1,
            "horizon": 600.0, "warmup": 60.0,
            "replications": 4,
        }
        wave = get_evaluator("replication-delay-batched")(300, params)
        scalar = get_evaluator("replication-delay")
        for index, value in enumerate(wave):
            assert value == scalar(300 + index, params)
