"""Tests for the lockstep batched replication engine.

The engine's single load-bearing property is *bit-identity*: replication k
of a batched run must equal the scalar engine run with the same seed, to
the last bit of the mean-delay estimate.  Everything else — the vectorized
stream tables, the sweep-point integration, the CRN comparison — leans on
that invariant, so these tests pin it over a randomized configuration grid
and then check the surrounding plumbing.
"""

import math
import random

import pytest

from repro.config import SystemConfig
from repro.core.system import simulate
from repro.errors import ConfigurationError
from repro.sim import (
    BatchedReplicationEngine,
    VariateTable,
    batched_replication_delays,
    spawn_seed,
    supports_batched,
    uniform_block_source,
)
from repro.sim.rng import RngStream
from repro.workload.arrivals import Workload, sample_time


def _random_cases(count, master_seed=7):
    """Randomized (config, workload) grid spanning the engine's scope."""
    rng = random.Random(master_seed)
    cases = []
    for _ in range(count):
        processors = rng.choice([2, 4, 8, 12, 16])
        partitions = rng.choice([1, 2])
        if processors % partitions:
            partitions = 1
        buses = rng.choice([1, 2, 4, 8])
        resources = rng.choice([1, 2, 3])
        rho = rng.choice([0.02, 0.05, 0.08, 0.12])
        distribution = rng.choice(["exponential", "hyperexponential"])
        config = SystemConfig.parse(
            f"{processors}/{partitions}x{processors // partitions}x{buses} "
            f"XBAR/{resources}")
        workload = Workload(rho, 1.0, 0.1,
                            service_distribution=distribution)
        cases.append((config, workload))
    return cases


class TestLockstepBitIdentity:
    def test_randomized_grid_matches_scalar_engine(self):
        """Per-replication delays equal scalar ``simulate`` bit for bit."""
        for index, (config, workload) in enumerate(_random_cases(8)):
            seeds = [2000 + index * 10 + k for k in range(4)]
            horizon, warmup = 400.0, 50.0
            batched = batched_replication_delays(
                config, workload, horizon=horizon, warmup=warmup, seeds=seeds)
            for k, seed in enumerate(seeds):
                scalar = simulate(config, workload, horizon=horizon,
                                  warmup=warmup,
                                  seed=seed).mean_queueing_delay
                if math.isnan(scalar):
                    assert math.isnan(batched[k])
                else:
                    assert batched[k] == scalar, (
                        f"replication {k} of {config} diverged")

    def test_result_carries_counts_and_window(self):
        config = SystemConfig.parse("4/1x4x2 XBAR/2")
        workload = Workload(0.05, 1.0, 0.1)
        engine = BatchedReplicationEngine(config, workload, seeds=[1, 2, 3])
        result = engine.run(horizon=500.0, warmup=50.0)
        assert result.seeds == (1, 2, 3)
        assert len(result.mean_delays) == 3
        assert all(count >= 0 for count in result.delay_counts)
        assert all(done > 0 for done in result.completed)
        assert result.simulated_time == 500.0
        assert result.measurement_start == 50.0
        with pytest.raises(ConfigurationError):
            engine.run(horizon=500.0, warmup=50.0)  # single-shot, like scalar

    def test_scope_gate(self):
        workload = Workload(0.05, 1.0, 0.1)
        assert supports_batched("16/1x16x8 XBAR/2", workload)
        assert not supports_batched("16/1x16x16 OMEGA/2", workload)
        assert not supports_batched("16/16x1x1 SBUS/inf", workload)
        assert not supports_batched("16/1x16x8 XBAR/2", workload,
                                    arbitration="random")
        deterministic = Workload(0.05, 1.0, 0.1,
                                 service_distribution="deterministic")
        assert not supports_batched("16/1x16x8 XBAR/2", deterministic)
        with pytest.raises(ConfigurationError):
            BatchedReplicationEngine("16/1x16x16 OMEGA/2", workload, seeds=[1])
        with pytest.raises(ConfigurationError):
            BatchedReplicationEngine("16/1x16x8 XBAR/2", workload, seeds=[])


class TestVariateStreams:
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_uniform_block_sources_agree_with_random_random(self, vectorized):
        source = uniform_block_source(1234, vectorized)
        reference = random.Random(1234)
        drawn = source(100) + source(37) + source(256)
        assert drawn == [reference.random() for _ in range(393)]

    @pytest.mark.parametrize("distribution", ["exponential",
                                              "hyperexponential"])
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_variate_table_matches_sample_time(self, distribution, vectorized):
        """Row s of the table draws exactly the scalar stream's variates."""
        seeds = [spawn_seed(9, "arrivals-0"), spawn_seed(9, "service-1")]
        table = VariateTable(seeds, rate=0.4, distribution=distribution,
                             block=16, vectorized=vectorized)
        for row, seed in enumerate(seeds):
            stream = RngStream(seed)
            for _ in range(40):
                expected = sample_time(stream, 0.4, distribution)
                assert table.draw_one(row) == expected

    def test_variate_table_validation(self):
        with pytest.raises(ConfigurationError):
            VariateTable([1], rate=0.0, distribution="exponential")
        with pytest.raises(ConfigurationError):
            VariateTable([1], rate=1.0, distribution="deterministic")
        with pytest.raises(ConfigurationError):
            VariateTable([1], rate=1.0, distribution="exponential", block=3)


class TestSweepPointEngine:
    def test_unknown_engine_rejected(self):
        from repro.analysis.sweep import simulated_point

        with pytest.raises(ConfigurationError):
            simulated_point("16/1x16x8 XBAR/2", 0.1, 0.5, engine="warp")

    def test_batched_point_reports_replication_interval(self):
        from repro.analysis.sweep import simulated_point

        point = simulated_point("16/1x16x8 XBAR/2", 0.1, 0.4, horizon=2_000.0,
                                seed=5, engine="batched")
        assert point.normalized_delay is not None
        assert point.ci_halfwidth is not None and point.ci_halfwidth > 0

    def test_batched_point_falls_back_outside_scope(self):
        from repro.analysis.sweep import simulated_point

        scalar = simulated_point("8/1x8x8 OMEGA/2", 0.1, 0.4, horizon=1_500.0,
                                 seed=5)
        batched = simulated_point("8/1x8x8 OMEGA/2", 0.1, 0.4, horizon=1_500.0,
                                  seed=5, engine="batched")
        assert batched == scalar

    def test_saturated_point_short_circuits(self):
        from repro.analysis.sweep import simulated_point

        point = simulated_point("16/1x16x8 XBAR/2", 0.1, 5.0, engine="batched")
        assert point.normalized_delay is None


class TestCommonRandomNumbers:
    def test_crn_halfwidth_no_wider_than_unpaired(self):
        """The acceptance pin: pairing cancels common workload noise."""
        from repro.analysis.replication import compare_with_replications
        from repro.analysis.sweep import workload_at

        workload = workload_at(0.5, 0.1)
        shared = dict(workload=workload, horizon=1_500.0, warmup=150.0,
                      replications=8, base_seed=100, engine="batched")
        first, second = "16/1x16x8 XBAR/2", "16/1x16x16 XBAR/1"
        _, paired_half, _ = compare_with_replications(
            first, second, crn=True, **shared)
        _, unpaired_half, _ = compare_with_replications(
            first, second, crn=False, **shared)
        assert paired_half <= unpaired_half

    def test_crn_comparison_engines_agree(self):
        """Batched CRN comparison equals the scalar one bit for bit."""
        from repro.analysis.replication import compare_with_replications
        from repro.analysis.sweep import workload_at

        workload = workload_at(0.4, 0.1)
        shared = dict(workload=workload, horizon=800.0, warmup=80.0,
                      replications=4, base_seed=50, crn=True)
        first, second = "8/1x8x4 XBAR/2", "8/1x8x8 XBAR/1"
        scalar = compare_with_replications(first, second, engine="scalar",
                                           **shared)
        batched = compare_with_replications(first, second, engine="batched",
                                            **shared)
        assert scalar[0] == batched[0]
        assert scalar[1] == batched[1]


class TestBatchedEvaluator:
    def test_batched_wave_matches_scalar_units(self):
        """replication-delay-batched == one replication-delay per seed."""
        from repro.runner.evaluators import get_evaluator

        params = {
            "config": "8/1x8x4 XBAR/2",
            "arrival_rate": 0.05, "transmission_rate": 1.0,
            "service_rate": 0.1,
            "horizon": 600.0, "warmup": 60.0,
            "replications": 4,
        }
        wave = get_evaluator("replication-delay-batched")(300, params)
        scalar = get_evaluator("replication-delay")
        for index, value in enumerate(wave):
            assert value == scalar(300 + index, params)
