"""Tests for the command-line interface and ASCII rendering."""

import pytest

from repro.cli import main
from repro.experiments.render import render_series


class TestCli:
    def test_list_prints_experiment_ids(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for exp_id in ("fig4", "fig11", "table2", "blocking"):
            assert exp_id in output

    def test_solve(self, capsys):
        assert main(["solve", "0.5", "1.0", "0.2", "4"]) == 0
        output = capsys.readouterr().out
        assert "matrix-geometric" in output
        assert "bus utilization        : 0.5" in output

    def test_solve_unstable_reports_error(self, capsys):
        assert main(["solve", "5.0", "1.0", "0.2", "4"]) == 1
        assert "unstable" in capsys.readouterr().err

    def test_solve_alternative_method(self, capsys):
        assert main(["solve", "0.3", "1.0", "0.5", "2",
                     "--method", "stage-recursion"]) == 0
        assert "stage-recursion" in capsys.readouterr().out

    def test_experiment_fig11(self, capsys):
        assert main(["experiment", "fig11"]) == 0
        assert "3.5" in capsys.readouterr().out

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_simulate(self, capsys):
        assert main(["simulate", "8/1x8x8 XBAR/1", "--rho", "0.3",
                     "--horizon", "2000"]) == 0
        output = capsys.readouterr().out
        assert "mu_s*d" in output

    def test_simulate_bad_config(self, capsys):
        assert main(["simulate", "7/1x7x7 OMEGA/1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_recommend(self, capsys):
        assert main(["recommend", "--resource-cost", "0.25"]) == 0
        output = capsys.readouterr().out
        assert "build:" in output
        assert "SBUS" in output  # cheap resources -> private buses

    def test_blocking(self, capsys):
        assert main(["blocking", "--trials", "20"]) == 0
        output = capsys.readouterr().out
        assert "RSIN" in output

    def test_faults_resource(self, capsys):
        assert main(["faults", "4/4x1x1 SBUS/2", "--mttf", "400",
                     "--mttr", "50", "--horizon", "3000"]) == 0
        output = capsys.readouterr().out
        assert "fault model      : resource" in output
        assert "degraded model" in output
        assert "capacity offered" in output

    def test_faults_interchange(self, capsys):
        assert main(["faults", "8/1x8x8 OMEGA/1", "--kind", "interchange",
                     "--mttf", "500", "--mttr", "40",
                     "--horizon", "2000", "--task-timeout", "100"]) == 0
        output = capsys.readouterr().out
        assert "fault model      : interchange" in output

    def test_faults_kind_mismatch_reports_error(self, capsys):
        assert main(["faults", "4/4x1x1 SBUS/2", "--kind", "cell",
                     "--horizon", "1000"]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_auto_engine_prints_no_fallback_note(self, capsys):
        """Every registered figure family batches now: the default auto
        engine finds nothing to gate (fig4 is pure analytic, so this
        stays cheap while still walking the fallback-note path)."""
        assert main(["run", "fig4", "--engine", "auto", "--no-cache",
                     "--quality", "fast"]) == 0
        captured = capsys.readouterr()
        assert "falls back" not in captured.err


class TestRender:
    def make_series(self):
        from repro.analysis import analytic_series
        return [analytic_series("16/16x1x1 SBUS/2", 0.1, [0.2, 0.4, 0.6]),
                analytic_series("16/8x1x1 SBUS/4", 0.1, [0.2, 0.4, 0.6])]

    def test_render_contains_markers_and_legend(self):
        chart = render_series(self.make_series(), title="demo")
        assert "demo" in chart
        assert "o" in chart and "x" in chart
        assert "16/16x1x1 SBUS/2" in chart  # default label is the triplet
        assert "traffic intensity" in chart

    def test_render_empty(self):
        from repro.analysis import analytic_series
        saturated = [analytic_series("16/1x1x1 SBUS/32", 0.1, [0.9])]
        chart = render_series(saturated)
        assert "no finite points" in chart

    def test_render_validates_dimensions(self):
        with pytest.raises(ValueError):
            render_series(self.make_series(), width=4)

    def test_max_delay_clips(self):
        chart = render_series(self.make_series(), max_delay=0.001)
        assert "0.001" in chart
