"""Tests for the parallel sweep runner (repro.runner).

The runner's contract is the determinism of the whole PR: parallel
execution must be byte-identical to serial, the cache must hit exactly
when the causal inputs are unchanged, worker failures must surface as
real tracebacks, and the wave-based replication procedure must reproduce
the sequential stopping rule bit for bit.
"""

import os
import pickle

import pytest

from repro.errors import ConfigurationError, WorkerError
from repro.experiments import figure_series, figure_work_units
from repro.runner import (
    ResultCache,
    SupervisorPolicy,
    SweepRunner,
    UnitOutcome,
    WorkUnit,
    resolve_jobs,
    work_unit_digest,
)
from repro.runner.evaluators import evaluator
from repro.sim import spawn_seed
from repro.workload.arrivals import Workload

#: Deliberately failing evaluator, registered at import (module level so
#: pool workers can unpickle it; SIM005).
@evaluator("test-explode")
def _explode(seed, params, backend="dense"):
    raise ValueError(f"boom from seed {seed}")


@evaluator("test-square")
def _square(seed, params, backend="dense"):
    return params["x"] ** 2 + seed


def _square_units(count, seed=0):
    return [WorkUnit("test-square", seed, {"x": x}) for x in range(count)]


class TestWorkUnit:
    def test_digest_is_stable_across_key_order(self):
        first = work_unit_digest("sweep-point", 3, {"a": 1, "b": 2})
        second = work_unit_digest("sweep-point", 3, {"b": 2, "a": 1})
        assert first == second

    def test_digest_changes_with_each_component(self):
        base = work_unit_digest("sweep-point", 3, {"a": 1})
        assert work_unit_digest("analytic-point", 3, {"a": 1}) != base
        assert work_unit_digest("sweep-point", 4, {"a": 1}) != base
        assert work_unit_digest("sweep-point", 3, {"a": 2}) != base
        assert work_unit_digest("sweep-point", 3, {"a": 1},
                                backend="sweep") != base

    def test_unit_computes_and_pins_digest(self):
        unit = WorkUnit("sweep-point", 3, {"a": 1})
        assert unit.config_digest == work_unit_digest("sweep-point", 3,
                                                      {"a": 1})
        with pytest.raises(ConfigurationError):
            WorkUnit("sweep-point", 3, {"a": 1}, config_digest="deadbeef")

    def test_params_are_read_only(self):
        unit = WorkUnit("sweep-point", 3, {"a": 1})
        with pytest.raises(TypeError):
            unit.params["a"] = 2

    def test_non_json_params_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkUnit("sweep-point", 3, {"a": object()})

    def test_payload_round_trips_through_pickle(self):
        unit = WorkUnit("sweep-point", 3, {"a": 1})
        payload = pickle.loads(pickle.dumps(unit.payload()))
        assert payload == ("sweep-point", 3, {"a": 1}, "dense",
                           unit.config_digest)

    def test_backend_tag_separates_cache_identities(self):
        dense = WorkUnit("analytic-point", 0, {"x": 1})
        sweep = WorkUnit("analytic-point", 0, {"x": 1}, backend="sweep")
        assert dense.backend == "dense"
        assert dense.config_digest != sweep.config_digest


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        assert resolve_jobs(2) == 2  # explicit argument wins

    def test_bad_values_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError):
            resolve_jobs()
        with pytest.raises(ConfigurationError):
            resolve_jobs(0)


class TestSweepRunner:
    def test_serial_and_parallel_results_identical(self):
        units = _square_units(9)
        serial = SweepRunner(jobs=1).run_values(units)
        parallel = SweepRunner(jobs=3).run_values(units)
        assert serial == parallel == [x ** 2 for x in range(9)]

    def test_outcomes_come_back_in_submission_order(self):
        units = _square_units(7)
        outcomes = SweepRunner(jobs=2).run(units)
        assert [o.unit.config_digest for o in outcomes] == [
            u.config_digest for u in units]
        assert all(isinstance(o, UnitOutcome) and o.ok and not o.cached
                   for o in outcomes)
        assert all(o.wall_time >= 0.0 for o in outcomes)

    def test_worker_exception_carries_remote_traceback(self):
        units = [WorkUnit("test-square", 0, {"x": 1}),
                 WorkUnit("test-explode", 7, {})]
        runner = SweepRunner(jobs=2)
        with pytest.raises(WorkerError) as excinfo:
            runner.run(units)
        assert "boom from seed 7" in excinfo.value.remote_traceback
        assert "ValueError" in excinfo.value.remote_traceback
        assert excinfo.value.digest == units[1].config_digest

    def test_raise_on_error_false_returns_outcomes(self):
        units = [WorkUnit("test-explode", 7, {}),
                 WorkUnit("test-square", 0, {"x": 2})]
        outcomes = SweepRunner(jobs=1).run(units, raise_on_error=False)
        assert not outcomes[0].ok and "boom" in outcomes[0].error
        assert outcomes[1].ok and outcomes[1].value == 4

    def test_chunk_size_knob_is_gone(self):
        # The IPC-chunking knob died with supervised per-unit dispatch;
        # any value — previously "valid" or not — is a configuration
        # error that points at the supervisor policy instead.
        for value in (0, 1, 16):
            with pytest.raises(ConfigurationError,
                               match="SupervisorPolicy"):
                SweepRunner(chunk_size=value)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        hit, value = cache.get("ab" + "0" * 62)
        assert not hit and value is None
        cache.put("ab" + "0" * 62, {"answer": 42})
        hit, value = cache.get("ab" + "0" * 62)
        assert hit and value == {"answer": 42}
        assert cache.misses == 1 and cache.hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = "cd" + "0" * 62
        cache.put(digest, 1.0)
        path = tmp_path / digest[:2] / f"{digest}.pkl"
        path.write_bytes(b"not a pickle")
        hit, value = cache.get(digest)
        assert not hit and value is None

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(3):
            cache.put(f"{index:02d}" + "0" * 62, index)
        stats = cache.stats()
        assert stats.entries == 3 and stats.total_bytes > 0
        assert "entries" in stats.format()
        assert cache.clear() == 3
        assert cache.stats().entries == 0

    def test_stats_format_is_human_readable(self):
        from repro.runner import CacheStats

        stats = CacheStats(root="/r", entries=2, total_bytes=3 * 1024 * 1024,
                           session_hits=1, session_misses=0)
        assert "3.0 MiB" in stats.format()
        small = CacheStats(root="/r", entries=1, total_bytes=512,
                           session_hits=0, session_misses=0)
        assert "512 B" in small.format()

    def test_format_bytes_scales_units(self):
        from repro.runner import format_bytes

        assert format_bytes(0) == "0 B"
        assert format_bytes(1023) == "1023 B"
        assert format_bytes(1536) == "1.5 KiB"
        assert format_bytes(5 * 1024 * 1024) == "5.0 MiB"
        assert format_bytes(3 * 1024 ** 3) == "3.0 GiB"

    def test_prune_evicts_least_recently_used_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        digests = [f"{index:02d}" + "0" * 62 for index in range(4)]
        for index, digest in enumerate(digests):
            cache.put(digest, b"x" * 100)
            path = tmp_path / digest[:2] / f"{digest}.pkl"
            os.utime(path, (1_000_000 + index, 1_000_000 + index))
        entry_size = cache.stats().total_bytes // 4
        removed, remaining = cache.prune(entry_size * 2)
        assert removed == 2 and remaining == entry_size * 2
        # The two oldest-written entries are gone, the newest two survive.
        assert not cache.get(digests[0])[0] and not cache.get(digests[1])[0]
        cache.hits = cache.misses = 0
        assert cache.get(digests[2])[0] and cache.get(digests[3])[0]

    def test_prune_within_budget_removes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ef" + "0" * 62, 1.0)
        total = cache.stats().total_bytes
        assert cache.prune(total) == (0, total)
        assert cache.prune(10 * 1024 * 1024) == (0, total)
        with pytest.raises(ValueError):
            cache.prune(-1)

    def test_prune_to_zero_empties_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(3):
            cache.put(f"{index:02d}" + "0" * 62, index)
        removed, remaining = cache.prune(0)
        assert removed == 3 and remaining == 0
        assert cache.stats().entries == 0

    def test_env_var_sets_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = ResultCache()
        assert cache.root == tmp_path / "envcache"

    def test_runner_serves_repeat_work_from_cache(self, tmp_path):
        units = _square_units(5)
        first = SweepRunner(jobs=1, cache=tmp_path)
        cold = first.run(units)
        assert not any(o.cached for o in cold)
        second = SweepRunner(jobs=1, cache=tmp_path)
        warm = second.run(units)
        assert all(o.cached and o.wall_time == 0.0 for o in warm)
        assert [o.value for o in warm] == [o.value for o in cold]

    def test_config_change_invalidates(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        runner.run(_square_units(3, seed=0))
        changed = runner.run(_square_units(3, seed=1))
        assert not any(o.cached for o in changed)

    def test_failures_are_not_cached(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=tmp_path)
        unit = WorkUnit("test-explode", 1, {})
        runner.run([unit], raise_on_error=False)
        again = runner.run([unit], raise_on_error=False)
        assert not again[0].cached and not again[0].ok


class TestFigureParity:
    def test_work_units_have_independent_seeds(self):
        _spec, _grid, units = figure_work_units("fig7", quality="fast",
                                                intensities=[0.3, 0.6])
        simulated = [u for u in units if u.evaluator_id == "sweep-point"]
        assert len(simulated) == len({u.seed for u in simulated})
        assert len({u.config_digest for u in units}) == len(units)

    def test_spawn_seed_is_key_determined(self):
        assert spawn_seed(1, "a", 0.3) == spawn_seed(1, "a", 0.3)
        assert spawn_seed(1, "a", 0.3) != spawn_seed(1, "a", 0.6)
        assert spawn_seed(1, "a", 0.3) != spawn_seed(2, "a", 0.3)

    def test_spawn_seeds_collision_free_across_figure_registry(self):
        """Derived per-point seeds never collide over the whole registry."""
        from repro.experiments import FIGURE_SPECS

        seen = {}
        for exp_id in FIGURE_SPECS:
            for quality in ("fast", "normal"):
                _spec, _grid, units = figure_work_units(exp_id,
                                                        quality=quality)
                for unit in units:
                    if unit.evaluator_id != "sweep-point":
                        continue
                    key = (unit.params["config"], unit.params["intensity"])
                    previous = seen.setdefault(unit.seed, key)
                    # The same (curve, intensity) pair legitimately reuses
                    # its seed across qualities; distinct pairs must not.
                    assert previous == key, (
                        f"seed collision: {previous} vs {key}")
        assert len(seen) > 50

    def test_engine_tag_separates_cache_identities(self):
        """Scalar and batched sweep points never share a digest, on
        crossbar and multistage figures alike."""
        for exp_id in ("fig7", "fig8", "fig12", "fig13"):
            _spec, _grid, scalar_units = figure_work_units(
                exp_id, intensities=[0.3, 0.6], engine="scalar")
            _spec, _grid, batched_units = figure_work_units(
                exp_id, intensities=[0.3, 0.6], engine="batched")
            scalar_digests = {u.config_digest for u in scalar_units}
            batched_digests = {u.config_digest for u in batched_units}
            assert not scalar_digests & batched_digests
        with pytest.raises(ConfigurationError):
            figure_work_units("fig7", engine="warp")

    def test_megabatch_units_never_cross_other_engines(self):
        """Megabatch curve units share no digest with scalar or batched
        point units (a megabatch cache entry is a whole curve)."""
        for exp_id in ("fig7", "fig8", "fig12", "fig13"):
            digests = {}
            for engine in ("scalar", "batched", "megabatch"):
                _spec, _grid, units = figure_work_units(
                    exp_id, intensities=[0.3, 0.6], engine=engine)
                digests[engine] = {u.config_digest for u in units}
            assert not digests["megabatch"] & digests["scalar"]
            assert not digests["megabatch"] & digests["batched"]
        # Every simulated figure family is mega-batch eligible now: all
        # of fig7's XBAR curves and all of fig12's Omega + crossbar
        # curves become one curve-level unit each.
        for exp_id in ("fig7", "fig12"):
            spec, _grid, units = figure_work_units(
                exp_id, intensities=[0.3, 0.6], engine="megabatch")
            assert [u.evaluator_id for u in units] == (
                ["megabatch-figure"] * len(spec.curves))

    def test_every_simulated_figure_family_is_megabatch_eligible(self):
        """The closed fabric gate: no simulated figure falls back when
        asked for the mega-batch engine (SBUS figures stay analytic)."""
        from repro.experiments import FIGURE_SPECS

        simulated = 0
        for exp_id, spec in FIGURE_SPECS.items():
            _spec, _grid, units = figure_work_units(
                exp_id, intensities=[0.3, 0.6], engine="megabatch")
            kinds = {u.evaluator_id for u in units}
            assert "sweep-point" not in kinds, (
                f"{exp_id} still falls back to per-point units")
            if "megabatch-figure" in kinds:
                simulated += 1
        assert simulated >= 4  # figs 7, 8, 12, 13 at least

    def test_auto_engine_shares_megabatch_digests(self):
        """``auto`` routes to the same units (and cache entries) as an
        explicit megabatch request — the routing is digest-invisible."""
        for exp_id in ("fig7", "fig12", "fig4"):
            _spec, _grid, mega_units = figure_work_units(
                exp_id, intensities=[0.3, 0.6], engine="megabatch")
            _spec, _grid, auto_units = figure_work_units(
                exp_id, intensities=[0.3, 0.6], engine="auto")
            assert [u.config_digest for u in auto_units] == [
                u.config_digest for u in mega_units]

    def test_schema_bump_separates_fabric_gate_digests(self, monkeypatch):
        """Widening the gate to SBUS/multistage fabrics bumped the cache
        schema, so pre-gate entries can never serve for the new kernels."""
        from repro.runner import workunit

        assert workunit.CACHE_SCHEMA_VERSION >= 6
        assert (f"schema{workunit.CACHE_SCHEMA_VERSION}"
                in workunit.code_version())
        params = {"config": "16/1x16x16 OMEGA/2", "mu_ratio": 0.1,
                  "intensity": 0.3, "engine": "batched"}
        current = work_unit_digest("sweep-point", 3, params)
        monkeypatch.setattr(workunit, "CACHE_SCHEMA_VERSION", 5)
        assert work_unit_digest("sweep-point", 3, params) != current

    def test_megabatch_evaluator_matches_per_point_units(self):
        """The megabatch-figure unit value == its sweep-point units."""
        from repro.runner.evaluators import get_evaluator

        intensities = [0.3, 0.6]
        master_seed = 9
        params = {"config": "16/1x16x8 XBAR/2", "mu_ratio": 0.1,
                  "intensities": intensities, "horizon": 1_000.0}
        curve = get_evaluator("megabatch-figure")(master_seed, params)
        sweep = get_evaluator("sweep-point")
        for intensity, point in zip(intensities, curve):
            expected = sweep(
                spawn_seed(master_seed, params["config"], intensity),
                {"config": params["config"], "mu_ratio": 0.1,
                 "intensity": intensity, "horizon": 1_000.0,
                 "engine": "batched"})
            assert point == expected

    def test_engine_flows_from_params_to_simulated_point(self):
        """A batched-tagged unit runs the batched engine (distinct value)."""
        from repro.runner.evaluators import get_evaluator

        params = {"config": "16/1x16x8 XBAR/2", "mu_ratio": 0.1,
                  "intensity": 0.4, "horizon": 1_000.0}
        sweep = get_evaluator("sweep-point")
        scalar_point = sweep(9, params)
        batched_point = sweep(9, {**params, "engine": "batched"})
        assert scalar_point.normalized_delay is not None
        assert batched_point.normalized_delay is not None
        assert batched_point.normalized_delay != scalar_point.normalized_delay

    def test_serial_and_parallel_figures_identical(self):
        grid = [0.3, 0.6]
        serial = figure_series("fig7", quality="fast", intensities=grid,
                               jobs=1)
        parallel = figure_series("fig7", quality="fast", intensities=grid,
                                 jobs=4)
        assert serial == parallel

    def test_cached_figure_is_identical_to_fresh(self, tmp_path):
        grid = [0.4]
        cold_runner = SweepRunner(jobs=1, cache=tmp_path)
        cold = figure_series("fig4", quality="fast", intensities=grid,
                             runner=cold_runner)
        warm_runner = SweepRunner(jobs=1, cache=tmp_path)
        warm = figure_series("fig4", quality="fast", intensities=grid,
                             runner=warm_runner)
        assert warm == cold
        assert all(o.cached for o in warm_runner.last_outcomes)

    def test_sweep_backend_flows_through_pool(self):
        """Analytic units tagged "sweep" run the fast path in workers and
        agree with the dense reference backend."""
        grid = [0.3, 0.5]
        dense = figure_series("fig4", quality="fast", intensities=grid,
                              jobs=1, solver="dense")
        fast = figure_series("fig4", quality="fast", intensities=grid,
                             jobs=2, solver="sweep")
        for dense_series, fast_series in zip(dense, fast):
            for dense_point, fast_point in zip(dense_series.points,
                                               fast_series.points):
                if dense_point.normalized_delay is None:
                    assert fast_point.normalized_delay is None
                    continue
                assert fast_point.normalized_delay == pytest.approx(
                    dense_point.normalized_delay, rel=1e-8)

    def test_backends_never_share_cache_entries(self, tmp_path):
        """The backend tag keeps dense and sweep results apart on disk."""
        grid = [0.4]
        runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        figure_series("fig4", quality="fast", intensities=grid,
                      runner=runner, solver="dense")
        figure_series("fig4", quality="fast", intensities=grid,
                      runner=runner, solver="sweep")
        assert not any(o.cached for o in runner.last_outcomes)


class TestReplicationWaves:
    WORKLOAD = Workload(arrival_rate=0.04, transmission_rate=1.0,
                        service_rate=0.2)

    def _replicate(self, **kwargs):
        from repro.analysis.replication import replicate_delay

        return replicate_delay("8/1x1x1 SBUS/4", self.WORKLOAD,
                               horizon=2_000.0, warmup=200.0,
                               target_relative_halfwidth=0.2,
                               max_replications=30, **kwargs)

    def test_wave_estimate_matches_sequential(self):
        sequential = self._replicate(jobs=1)
        for jobs in (2, 3, 7):
            waved = self._replicate(jobs=jobs)
            assert waved.mean_delay == sequential.mean_delay
            assert waved.ci_halfwidth == sequential.ci_halfwidth
            assert waved.replications == sequential.replications
            assert waved.values == sequential.values

    def test_wave_runner_path_at_jobs_one_matches_sequential(self):
        # Force the wave code path with an explicit runner even at one job.
        sequential = self._replicate(jobs=1)
        waved = self._replicate(runner=SweepRunner(jobs=1))
        assert waved == sequential


class TestJobsEnvIntegration:
    def test_repro_jobs_env_drives_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        runner = SweepRunner()
        assert runner.effective_jobs == 2
        values = runner.run_values(_square_units(4))
        assert values == [0, 1, 4, 9]


class TestCacheIntegrity:
    """The checksummed-envelope contract: damage is detected, never served."""

    def _digest(self, index=0):
        return f"{index:02x}" + "e" * 62

    def test_envelope_round_trip_and_statuses(self):
        from repro.runner import decode_entry, encode_entry

        digest = self._digest()
        blob = encode_entry(digest, {"answer": 42})
        assert decode_entry(digest, blob) == ("ok", {"answer": 42})
        # Stored under the wrong digest: corrupt, not a value.
        assert decode_entry(self._digest(1), blob)[0] == "corrupt"
        # A flipped byte anywhere in the payload: corrupt.
        damaged = blob[:-10] + bytes([blob[-10] ^ 0xFF]) + blob[-9:]
        assert decode_entry(digest, damaged)[0] in ("corrupt", "legacy")
        # Truncation: corrupt.
        assert decode_entry(digest, blob[: len(blob) // 2])[0] == "corrupt"
        # A pre-envelope plain pickle: legacy (a miss, not quarantine bait).
        assert decode_entry(digest, pickle.dumps(42))[0] == "legacy"

    def test_corrupt_get_quarantines_the_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = self._digest(2)
        cache.put(digest, [1.0, 2.0])
        path = tmp_path / digest[:2] / f"{digest}.pkl"
        blob = path.read_bytes()
        path.write_bytes(blob[:-4] + bytes([blob[-4] ^ 0xFF]) + blob[-3:])
        hit, value = cache.get(digest)
        assert not hit and value is None
        assert not path.exists()
        quarantined = list(cache.quarantine_root.iterdir())
        assert [p.name for p in quarantined] == [f"{digest}.pkl.quar"]
        stats = cache.stats()
        assert stats.entries == 0
        assert stats.quarantined == 1 and stats.session_corrupt == 1
        # Quarantine never blocks a fresh write of the same digest.
        cache.put(digest, [3.0])
        assert cache.get(digest) == (True, [3.0])

    def test_legacy_entry_is_a_miss_and_overwritten_in_place(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = self._digest(3)
        path = tmp_path / digest[:2] / f"{digest}.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"pre-envelope": True}))
        assert cache.get(digest) == (False, None)
        assert path.exists()          # a miss, not quarantine bait
        cache.put(digest, "fresh")
        assert cache.get(digest) == (True, "fresh")

    def test_verify_reports_and_repairs(self, tmp_path):
        cache = ResultCache(tmp_path)
        good = self._digest(4)
        bad = self._digest(5)
        legacy = self._digest(6)
        cache.put(good, 1)
        cache.put(bad, 2)
        bad_path = tmp_path / bad[:2] / f"{bad}.pkl"
        bad_path.write_bytes(b"\x00garbage")
        legacy_path = tmp_path / legacy[:2] / f"{legacy}.pkl"
        legacy_path.parent.mkdir(parents=True, exist_ok=True)
        legacy_path.write_bytes(pickle.dumps(3))

        report = cache.verify()
        assert (report.checked, report.ok) == (3, 1)
        assert report.corrupt == (bad,)
        assert report.legacy == (legacy,)
        assert not report.clean
        assert bad in report.format()

        repaired = cache.verify(repair=True)
        assert repaired.quarantined == 2
        assert not bad_path.exists() and not legacy_path.exists()
        assert cache.verify().clean
        assert cache.get(good) == (True, 1)

    def test_scans_tolerate_entries_vanishing_mid_walk(self, tmp_path):
        # A dangling symlink is a faithful stand-in for the race: the scan
        # lists the entry, but stat/read raise when another runner has
        # already pruned it.
        cache = ResultCache(tmp_path)
        cache.put(self._digest(7), "survivor")
        ghost = tmp_path / "aa" / (self._digest(8)[2:] + ".pkl")
        ghost.parent.mkdir(parents=True, exist_ok=True)
        ghost.symlink_to(tmp_path / "never-existed.pkl")

        stats = cache.stats()
        assert stats.entries == 1
        report = cache.verify()
        assert report.checked == 1 and report.clean
        removed, remaining = cache.prune(0)
        assert removed == 1 and remaining == 0

    def test_clear_sweeps_quarantine_too(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = self._digest(9)
        cache.put(digest, 1)
        path = tmp_path / digest[:2] / f"{digest}.pkl"
        path.write_bytes(b"torn")
        cache.get(digest)
        assert list(cache.quarantine_root.iterdir())
        assert cache.clear() == 0     # the only entry was quarantined
        assert not cache.quarantine_root.exists()


@evaluator("test-engine-sensitive")
def _engine_sensitive(seed, params, backend="dense"):
    if params.get("engine") == "batched":
        raise ValueError("batched path deliberately broken")
    return {"seed": seed, "engine": params.get("engine"), "x": params["x"]}


@evaluator("test-log-execution")
def _log_execution(seed, params, backend="dense"):
    # Appends one line per *execution* to a file the test names; dedup
    # tests count lines to prove each unique digest ran exactly once.
    with open(params["log"], "a", encoding="utf-8") as handle:
        handle.write(f"{seed}:{params['x']}\n")
    return params["x"] * 10 + seed


class TestInFlightDedup:
    def _duplicated_units(self, log, uniques=3, copies=3):
        units = []
        for copy in range(copies):
            units.extend(WorkUnit("test-log-execution", 1,
                                  {"x": x, "log": str(log)})
                         for x in range(uniques))
        return units

    def test_each_unique_digest_executes_once(self, tmp_path):
        log = tmp_path / "executions.log"
        units = self._duplicated_units(log, uniques=3, copies=3)
        runner = SweepRunner(jobs=1)
        outcomes = runner.run(units)
        assert log.read_text().count("\n") == 3  # 9 units, 3 executions
        report = runner.last_report
        assert (report.total, report.computed, report.deduped) == (9, 3, 6)
        assert sum(1 for o in outcomes if o.deduped) == 6
        # Every follower carries its leader's value, re-keyed to its unit.
        assert [o.value for o in outcomes] == [1, 11, 21] * 3
        assert [o.unit.config_digest for o in outcomes] == [
            u.config_digest for u in units]

    def test_dedup_pool_path_executes_once_per_digest(self, tmp_path):
        log = tmp_path / "executions.log"
        units = self._duplicated_units(log, uniques=4, copies=2)
        runner = SweepRunner(jobs=2)
        outcomes = runner.run(units)
        assert log.read_text().count("\n") == 4
        assert runner.last_report.deduped == 4
        assert [o.value for o in outcomes] == [1, 11, 21, 31] * 2

    def test_byte_identical_to_dedup_off(self, tmp_path):
        units = []
        for copy in range(2):
            units.extend(WorkUnit("test-square", 5, {"x": x})
                         for x in range(4))
        on = SweepRunner(jobs=1).run(units)
        off_runner = SweepRunner(jobs=1,
                                 supervisor=SupervisorPolicy(dedup=False))
        off = off_runner.run(units)
        assert [pickle.dumps(o.value) for o in on] == \
               [pickle.dumps(o.value) for o in off]
        assert off_runner.last_report.deduped == 0
        assert off_runner.last_report.computed == 8

    def test_leader_failure_fails_followers_with_same_error(self):
        units = [WorkUnit("test-explode", 7, {}),
                 WorkUnit("test-explode", 7, {}),
                 WorkUnit("test-square", 0, {"x": 2})]
        policy = SupervisorPolicy(max_attempts=1, degrade=False)
        runner = SweepRunner(jobs=1, supervisor=policy)
        outcomes = runner.run(units, raise_on_error=False)
        assert not outcomes[0].ok and not outcomes[1].ok
        assert outcomes[0].error == outcomes[1].error
        assert "boom from seed 7" in outcomes[1].error
        assert not outcomes[0].deduped and outcomes[1].deduped
        assert outcomes[2].ok and not outcomes[2].deduped

    def test_degradation_digest_propagates_to_followers(self, tmp_path):
        unit = WorkUnit("test-engine-sensitive", 3,
                        {"x": 1, "engine": "batched"})
        scalar = WorkUnit("test-engine-sensitive", 3,
                          {"x": 1, "engine": "scalar"})
        cache = ResultCache(tmp_path)
        policy = SupervisorPolicy(max_attempts=1, degrade=True)
        runner = SweepRunner(jobs=1, cache=cache, supervisor=policy)
        first, second = runner.run([unit, WorkUnit(
            "test-engine-sensitive", 3, {"x": 1, "engine": "batched"})])
        assert first.ok and second.ok and second.deduped
        assert first.computed_digest == scalar.config_digest
        assert second.computed_digest == scalar.config_digest
        assert first.degraded == second.degraded == \
            ("engine:batched->scalar",)
        # Cached once, under what was actually computed.
        assert cache.get(scalar.config_digest)[0]
        assert cache.get(unit.config_digest)[0] is False
        assert cache.stats().entries == 1

    def test_counter_invariant_with_cache_hits(self, tmp_path):
        units = [WorkUnit("test-square", 2, {"x": x}) for x in (1, 1, 2, 3)]
        cache = ResultCache(tmp_path)
        warm = SweepRunner(jobs=1, cache=cache)
        warm.run([units[3]])  # pre-warm x=3
        runner = SweepRunner(jobs=1, cache=cache)
        runner.run(units)
        report = runner.last_report
        assert report.cache_hits == 1
        assert report.computed + report.deduped + report.cache_hits \
            == report.total == 4
        assert report.deduped == 1

    def test_deduped_run_report_format_mentions_counters(self):
        units = [WorkUnit("test-square", 0, {"x": 1}),
                 WorkUnit("test-square", 0, {"x": 1})]
        runner = SweepRunner(jobs=1)
        runner.run(units)
        text = runner.last_report.format()
        assert "1 deduped" in text
        assert "hit rate" in text


class TestExecutorBackendSeam:
    def test_custom_backend_drives_the_parallel_path(self):
        from repro.runner import SerialBackend

        class CountingBackend(SerialBackend):
            def __init__(self, workers):
                self.workers = workers
                self.submitted = 0
                self.lifecycle = []

            def start(self):
                self.lifecycle.append("start")

            def submit(self, payload, attempt, chaos_spec):
                self.submitted += 1
                return super().submit(payload, attempt, chaos_spec)

            def terminate(self):
                self.lifecycle.append("terminate")

            def shutdown(self):
                self.lifecycle.append("shutdown")

        built = []

        def factory(workers):
            backend = CountingBackend(workers)
            built.append(backend)
            return backend

        units = _square_units(6)
        runner = SweepRunner(jobs=3, backend_factory=factory)
        values = runner.run_values(units)
        assert values == SweepRunner(jobs=1).run_values(units)
        [backend] = built
        assert backend.workers == 3
        assert backend.submitted == 6
        assert backend.lifecycle == ["start", "shutdown"]

    def test_broken_backend_walks_recovery_to_serial(self):
        from repro.runner import BackendBroken, SerialBackend

        class FlakyBackend(SerialBackend):
            """Breaks on every submit: the supervisor must respawn it and
            eventually degrade the work to inline serial execution."""

            broken_exceptions = (BackendBroken,)

            def __init__(self, workers):
                self.workers = workers

            def submit(self, payload, attempt, chaos_spec):
                raise BackendBroken("no transport today")

        policy = SupervisorPolicy(max_attempts=1, max_pool_respawns=1)
        runner = SweepRunner(jobs=2, backend_factory=FlakyBackend,
                             supervisor=policy)
        units = _square_units(4)
        values = runner.run_values(units)
        assert values == [x ** 2 for x in range(4)]
        report = runner.last_report
        assert report.pool_respawns >= 1
        assert report.serial_fallbacks == 4
