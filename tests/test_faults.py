"""Unit tests for the fault-injection subsystem.

Covers the fault models and schedules, the retry/backoff policy, the
fabric-level fail/repair hooks of all three network classes, the system
hooks (severing, retries, abandonment), and the availability ledger.
"""

import math
import random

import pytest

from repro.config import SystemConfig
from repro.core.system import RsinSystem, simulate
from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
    ReproError,
    RetryExhaustedError,
    SchedulingError,
    SimulationError,
)
from repro.faults import (
    FAULT_KINDS,
    BusFault,
    CellFault,
    FaultConfig,
    FaultEvent,
    FaultSchedule,
    InterchangeFault,
    ResourceFault,
    RetryPolicy,
)
from repro.networks.crossbar import CrossbarFabric
from repro.networks.omega import MultistageFabric
from repro.networks.topology import make_topology
from repro.workload import Workload

WORKLOAD = Workload(arrival_rate=0.05, transmission_rate=1.0,
                    service_rate=0.1)


class TestFaultModels:
    def test_kind_registry_covers_all_models(self):
        assert set(FAULT_KINDS) == {"resource", "bus", "cell", "interchange"}
        assert ResourceFault(mttf=10.0, mttr=1.0).kind == "resource"
        assert BusFault(mttf=10.0, mttr=1.0).kind == "bus"
        assert CellFault(mttf=10.0, mttr=1.0).kind == "cell"
        assert InterchangeFault(mttf=10.0, mttr=1.0).kind == "interchange"

    def test_availability(self):
        model = ResourceFault(mttf=900.0, mttr=100.0)
        assert model.availability == pytest.approx(0.9)
        assert ResourceFault(mttf=math.inf, mttr=1.0).availability == 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceFault(mttf=0.0, mttr=1.0)
        with pytest.raises(ConfigurationError):
            ResourceFault(mttf=1.0, mttr=0.0)
        with pytest.raises(ConfigurationError):
            ResourceFault(mttf=1.0, mttr=math.inf)
        with pytest.raises(ConfigurationError):
            ResourceFault(mttf=1.0, mttr=1.0, failure_distribution="weird")

    def test_infinite_mttf_never_fails(self):
        model = BusFault(mttf=math.inf, mttr=1.0)
        assert model.next_failure(random.Random(0)) == math.inf

    def test_deterministic_distributions(self):
        model = BusFault(mttf=50.0, mttr=5.0,
                         failure_distribution="deterministic",
                         repair_distribution="deterministic")
        rng = random.Random(0)
        assert model.next_failure(rng) == pytest.approx(50.0)
        assert model.next_repair(rng) == pytest.approx(5.0)

    def test_schedule_sorts_events(self):
        schedule = FaultSchedule.of((9.0, "bus", (0, 0), "down"),
                                    (3.0, "bus", (0, 0), "down"))
        assert [event.time for event in schedule.events] == [3.0, 9.0]

    def test_fault_event_validation(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=-1.0, kind="bus", component=(0, 0), action="down")
        with pytest.raises(ConfigurationError):
            FaultEvent(time=1.0, kind="bus", component=(0, 0), action="maybe")
        with pytest.raises(ConfigurationError):
            FaultEvent(time=1.0, kind="nope", component=(0, 0), action="down")

    def test_config_rejects_duplicate_kinds(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(models=(BusFault(mttf=1.0, mttr=1.0),
                                BusFault(mttf=2.0, mttr=1.0)))

    def test_fault_free_detection(self):
        assert FaultConfig().fault_free
        assert FaultConfig(
            models=(BusFault(mttf=math.inf, mttr=1.0),)).fault_free
        assert not FaultConfig(
            models=(BusFault(mttf=5.0, mttr=1.0),)).fault_free


class TestRetryPolicy:
    def test_exponential_backoff_without_jitter(self):
        policy = RetryPolicy(max_retries=3, backoff_base=0.5,
                             backoff_factor=2.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.next_delay(1, rng) == pytest.approx(0.5)
        assert policy.next_delay(2, rng) == pytest.approx(1.0)
        assert policy.next_delay(3, rng) == pytest.approx(2.0)

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0, jitter=0.5)
        rng = random.Random(7)
        for _ in range(100):
            assert 0.5 <= policy.next_delay(1, rng) <= 1.5

    def test_exhaustion_raises(self):
        policy = RetryPolicy(max_retries=2)
        with pytest.raises(RetryExhaustedError) as info:
            policy.next_delay(3, random.Random(0))
        assert info.value.attempts == 3
        assert info.value.max_retries == 2
        assert isinstance(info.value, SchedulingError)

    def test_timeout(self):
        policy = RetryPolicy(task_timeout=10.0)
        assert not policy.expired(10.0)
        assert policy.expired(10.5)
        assert not RetryPolicy().expired(1e12)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_cap=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_cap=-1.0)

    def test_backoff_cap_bounds_the_exponential(self):
        policy = RetryPolicy(max_retries=5, backoff_base=0.5,
                             backoff_factor=2.0, backoff_cap=1.5, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.next_delay(n, rng) for n in (1, 2, 3, 4, 5)]
        assert delays == pytest.approx([0.5, 1.0, 1.5, 1.5, 1.5])
        # The default (infinite) cap preserves the classical shape.
        assert RetryPolicy().backoff_cap == math.inf

    def test_backoff_stream_is_key_determined(self):
        from repro.faults import backoff_stream

        digest = "a" * 64
        first = [backoff_stream(3, digest, attempt).uniform(-0.5, 0.5)
                 for attempt in (1, 2, 3)]
        second = [backoff_stream(3, digest, attempt).uniform(-0.5, 0.5)
                  for attempt in (1, 2, 3)]
        assert first == second
        assert backoff_stream(3, digest, 1).uniform(0, 1) \
            != backoff_stream(4, digest, 1).uniform(0, 1)
        assert backoff_stream(3, digest, 1).uniform(0, 1) \
            != backoff_stream(3, "b" * 64, 1).uniform(0, 1)


class TestErrorHierarchy:
    def test_fault_errors_nest_under_repro_error(self):
        assert issubclass(FaultInjectionError, SimulationError)
        assert issubclass(RetryExhaustedError, SchedulingError)
        assert issubclass(FaultInjectionError, ReproError)
        assert issubclass(RetryExhaustedError, ReproError)


class TestFabricHooks:
    def test_crossbar_cell_failure_blocks_and_repairs(self):
        fabric = CrossbarFabric(inputs=2, outputs=2, rng=random.Random(0))
        assert ("cell", (0, 1)) in fabric.fault_components()
        fabric.fail_component(("cell", (0, 0)))
        fabric.fail_component(("cell", (0, 1)))
        assert fabric.connect(0, [0, 1]) is None  # input 0 fully cut off
        connection = fabric.connect(1, [0, 1])
        assert connection is not None  # input 1 unaffected
        fabric.release(connection)
        fabric.repair_component(("cell", (0, 0)))
        assert fabric.connect(0, [0]) is not None

    def test_crossbar_fail_severs_matching_circuit(self):
        fabric = CrossbarFabric(inputs=2, outputs=2, rng=random.Random(0))
        connection = fabric.connect(0, [1])
        severed = fabric.fail_component(("cell", (0, 1)))
        assert severed == frozenset({connection})
        assert not fabric.active_connections

    def test_omega_routes_around_failed_box(self):
        fabric = MultistageFabric(make_topology("OMEGA", 8))
        # Kill one first-stage box; its two inputs lose all routes, the
        # other six inputs still reach every output.
        boxes = [c for c in fabric.fault_components() if c[1][0] == 0]
        dead = boxes[0]
        fabric.fail_component(dead)
        blocked_inputs = []
        for i in range(8):
            probe = fabric.connect(i, list(range(8)))
            if probe is None:
                blocked_inputs.append(i)
            else:
                fabric.release(probe)
        assert len(blocked_inputs) == 2
        open_input = next(i for i in range(8) if i not in blocked_inputs)
        connection = fabric.connect(open_input, list(range(8)))
        assert connection is not None
        dead_stage, dead_box = dead[1]
        assert not any(column == dead_stage
                       and fabric._in_map[column][index][0] == dead_box
                       for column, index in connection.links)
        fabric.release(connection)
        fabric.repair_component(dead)
        assert fabric.connect(blocked_inputs[0], list(range(8))) is not None

    def test_double_fail_and_bad_component_rejected(self):
        fabric = CrossbarFabric(inputs=2, outputs=2, rng=random.Random(0))
        fabric.fail_component(("cell", (0, 0)))
        with pytest.raises(FaultInjectionError):
            fabric.fail_component(("cell", (0, 0)))
        with pytest.raises(FaultInjectionError):
            fabric.repair_component(("cell", (1, 1)))
        with pytest.raises(FaultInjectionError):
            fabric.fail_component(("cell", (9, 9)))


def _system(triplet, faults=None, workload=WORKLOAD, seed=3):
    config = SystemConfig.parse(triplet)
    if faults is not None:
        config = config.with_faults(faults)
    return RsinSystem(config, workload, seed=seed)


class TestSystemHooks:
    def test_bus_failure_severs_inflight_transmission(self):
        system = _system("2/1x1x1 SBUS/2")
        # Drive manually: start the system, then kill the bus mid-run.
        system.env.timeout(50.0).add_callback(
            lambda _e: system.fail_bus(0, 0))
        system.env.timeout(80.0).add_callback(
            lambda _e: system.repair_bus(0, 0))
        result = system.run(horizon=500.0)
        assert result.completed_tasks > 0

    def test_resource_failure_defers_until_job_boundary(self):
        system = _system("2/1x1x1 SBUS/1")
        port = system.ports[0][0]
        port.busy_resources = 1  # pretend a job is in service
        system.fail_resource(0, 0)
        assert port.pending_resource_failures == 1
        assert port.failed_resources == 0
        port.busy_resources = 0
        system.repair_resource(0, 0)  # cancels the pending failure
        assert port.pending_resource_failures == 0
        system.fail_resource(0, 0)
        assert port.failed_resources == 1
        assert not port.can_accept
        system.repair_resource(0, 0)
        assert port.can_accept

    def test_repair_without_failure_rejected(self):
        system = _system("2/1x1x1 SBUS/1")
        with pytest.raises(FaultInjectionError):
            system.repair_resource(0, 0)
        with pytest.raises(FaultInjectionError):
            system.repair_bus(0, 0)

    def test_scheduled_bus_outage_counts_severed_and_retried(self):
        schedule = FaultSchedule.of((40.0, "bus", (0, 0), "down"),
                                    (60.0, "bus", (0, 0), "up"))
        faults = FaultConfig(schedule=schedule,
                             retry=RetryPolicy(max_retries=8, jitter=0.0))
        workload = Workload(arrival_rate=0.2, transmission_rate=0.1,
                            service_rate=0.5)  # long transmissions
        result = simulate(
            SystemConfig.parse("2/1x1x1 SBUS/4").with_faults(faults),
            workload, horizon=300.0, seed=1)
        assert result.severed_transmissions >= 1
        assert result.retried_tasks >= 1
        report = result.availability
        assert report.total_failures == 1
        assert report.downtime_by_component()[("bus", (0, 0))] == \
            pytest.approx(20.0)

    def test_retry_budget_exhaustion_abandons(self):
        # A bus that dies and never comes back: the severed task retries
        # until the budget is spent, then is abandoned; queued tasks age
        # out through the task timeout.
        schedule = FaultSchedule.of((10.0, "bus", (0, 0), "down"))
        faults = FaultConfig(
            schedule=schedule,
            retry=RetryPolicy(max_retries=2, backoff_base=1.0, jitter=0.0,
                              task_timeout=50.0))
        workload = Workload(arrival_rate=0.3, transmission_rate=0.05,
                            service_rate=0.5)
        result = simulate(
            SystemConfig.parse("1/1x1x1 SBUS/2").with_faults(faults),
            workload, horizon=400.0, seed=2)
        assert result.abandoned_tasks >= 1

    def test_cell_faults_rejected_on_sbus(self):
        faults = FaultConfig(models=(CellFault(mttf=10.0, mttr=1.0),))
        with pytest.raises(ConfigurationError):
            _system("2/1x1x1 SBUS/1", faults)

    def test_interchange_faults_rejected_on_crossbar(self):
        faults = FaultConfig(models=(InterchangeFault(mttf=10.0, mttr=1.0),))
        with pytest.raises(ConfigurationError):
            _system("4/1x4x4 XBAR/1", faults)

    def test_resource_faults_rejected_with_infinite_resources(self):
        faults = FaultConfig(models=(ResourceFault(mttf=10.0, mttr=1.0),))
        with pytest.raises(ConfigurationError):
            SystemConfig.parse("2/2x1x1 SBUS/inf").with_faults(faults)

    def test_schedule_with_unknown_component_rejected(self):
        schedule = FaultSchedule.of((1.0, "bus", (0, 7), "down"))
        with pytest.raises(ConfigurationError):
            _system("2/1x1x1 SBUS/1", FaultConfig(schedule=schedule))

    def test_availability_report_attached_only_with_faults(self):
        healthy = simulate("2/1x1x1 SBUS/1", WORKLOAD, horizon=200.0, seed=1)
        assert healthy.availability is None
        faults = FaultConfig(models=(BusFault(mttf=math.inf, mttr=1.0),))
        shadow = simulate(
            SystemConfig.parse("2/1x1x1 SBUS/1").with_faults(faults),
            WORKLOAD, horizon=200.0, seed=1)
        assert shadow.availability is not None
        assert shadow.availability.total_failures == 0
        assert shadow == healthy  # compare=False on the report

    @pytest.mark.parametrize("triplet,model", [
        ("8/2x1x1 SBUS/2", BusFault(mttf=60.0, mttr=15.0)),
        ("8/2x1x1 SBUS/2", ResourceFault(mttf=60.0, mttr=15.0)),
        ("8/1x8x8 XBAR/1", CellFault(mttf=200.0, mttr=20.0)),
        ("8/1x8x8 OMEGA/1", InterchangeFault(mttf=120.0, mttr=15.0)),
    ])
    def test_stochastic_faults_complete_work_on_every_fabric(self, triplet,
                                                             model):
        faults = FaultConfig(models=(model,),
                             retry=RetryPolicy(max_retries=6,
                                               task_timeout=200.0))
        result = simulate(
            SystemConfig.parse(triplet).with_faults(faults),
            WORKLOAD, horizon=2_000.0, warmup=100.0, seed=9)
        assert result.completed_tasks > 0
        assert result.availability.total_failures > 0
        assert 0.0 < result.availability.time_weighted_capacity() < 1.0
