"""Unit tests for the configuration grammar."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.config import NETWORK_TYPES, SystemConfig, parse_config
from repro.errors import ConfigurationError


class TestParsing:
    def test_paper_example_private_bus(self):
        config = parse_config("16/16x1x1 SBUS/2")
        assert config.processors == 16
        assert config.num_networks == 16
        assert config.network_type == "SBUS"
        assert config.resources_per_port == 2
        assert config.is_private_bus
        assert config.total_resources == 32

    def test_paper_example_crossbar(self):
        config = parse_config("16/1x16x32 XBAR/1")
        assert config.outputs_per_network == 32
        assert config.total_resources == 32
        assert config.processors_per_network == 16
        assert not config.is_private_bus

    def test_paper_example_cube(self):
        config = parse_config("16/1x16x16 CUBE/2")
        assert config.network_type == "CUBE"
        assert config.total_resources == 32

    def test_unicode_multiplication_sign(self):
        config = parse_config("16/8×2×2 OMEGA/2")
        assert config.num_networks == 8
        assert config.inputs_per_network == 2

    def test_infinite_resources(self):
        config = parse_config("16/16x1x1 SBUS/inf")
        assert config.resources_per_port == math.inf
        assert config.total_resources == math.inf

    def test_case_insensitive_network(self):
        assert parse_config("16/1x16x16 omega/2").network_type == "OMEGA"

    @pytest.mark.parametrize("bad", [
        "",
        "16 SBUS",
        "16/1x16x16 WARP/2",        # unknown network
        "16/3x1x1 SBUS/2",          # 3 does not divide 16
        "16/1x16x16 OMEGA/inf",     # inf only for buses
        "16/1x8x16 XBAR/1",         # j must equal p/i
        "16/1x16x12 OMEGA/2",       # not square
        "12/1x12x12 OMEGA/2",       # not a power of two
        "16/2x1x2 SBUS/4",          # bus must be 1x1
        "0/1x1x1 SBUS/1",           # zero processors
    ])
    def test_invalid_configurations_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_config(bad)

    def test_zero_resources_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_config("16/16x1x1 SBUS/0")


class TestRoundTrip:
    @given(
        partitions=st.sampled_from([1, 2, 4, 8, 16]),
        resources=st.integers(min_value=1, max_value=9),
    )
    def test_sbus_round_trip(self, partitions, resources):
        text = f"16/{partitions}x1x1 SBUS/{resources}"
        config = parse_config(text)
        assert parse_config(str(config)) == config

    @given(
        size_log=st.integers(min_value=1, max_value=4),
        kind=st.sampled_from(["OMEGA", "CUBE", "BASELINE"]),
        resources=st.integers(min_value=1, max_value=4),
        partition_log=st.integers(min_value=0, max_value=3),
    )
    def test_multistage_round_trip(self, size_log, kind, resources, partition_log):
        partitions = 2 ** partition_log
        size = 2 ** size_log
        processors = partitions * size
        text = f"{processors}/{partitions}x{size}x{size} {kind}/{resources}"
        config = parse_config(text)
        assert parse_config(str(config)) == config
        assert config.total_resources == partitions * size * resources


class TestDerived:
    def test_processors_per_network(self):
        assert parse_config("16/2x1x1 SBUS/16").processors_per_network == 8
        assert parse_config("16/4x4x4 XBAR/2").processors_per_network == 4

    def test_total_ports(self):
        assert parse_config("16/4x4x8 XBAR/1").total_ports == 32
        assert parse_config("16/1x1x1 SBUS/32").total_ports == 1

    def test_network_types_constant(self):
        assert set(NETWORK_TYPES) == {"SBUS", "XBAR", "OMEGA", "CUBE", "BASELINE"}
