"""Unit tests for generator-based processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment


def test_process_advances_through_timeouts():
    env = Environment()
    log = []

    def worker():
        log.append(("start", env.now))
        yield env.timeout(2.0)
        log.append(("middle", env.now))
        yield env.timeout(3.0)
        log.append(("end", env.now))

    env.process(worker())
    env.run()
    assert log == [("start", 0.0), ("middle", 2.0), ("end", 5.0)]


def test_process_receives_event_values():
    env = Environment()
    received = []

    def worker():
        value = yield env.timeout(1.0, value="hello")
        received.append(value)

    env.process(worker())
    env.run()
    assert received == ["hello"]


def test_process_return_value_becomes_event_value():
    env = Environment()

    def worker():
        yield env.timeout(1.0)
        return 99

    process = env.process(worker())
    assert env.run_until_event(process) == 99


def test_process_can_wait_on_process():
    env = Environment()
    log = []

    def child():
        yield env.timeout(2.0)
        return "child-result"

    def parent():
        result = yield env.process(child())
        log.append((env.now, result))

    env.process(parent())
    env.run()
    assert log == [(2.0, "child-result")]


def test_failed_event_raises_inside_process():
    env = Environment()
    caught = []

    def worker():
        trigger = env.event()
        env.timeout(1.0).add_callback(
            lambda e: trigger.fail(ValueError("injected")))
        try:
            yield trigger
        except ValueError as exc:
            caught.append(str(exc))

    env.process(worker())
    env.run()
    assert caught == ["injected"]


def test_unwaited_crashing_process_propagates():
    env = Environment()

    def worker():
        yield env.timeout(1.0)
        raise RuntimeError("crash")

    env.process(worker())
    with pytest.raises(RuntimeError):
        env.run()


def test_waited_crashing_process_fails_its_event():
    env = Environment()
    outcome = []

    def child():
        yield env.timeout(1.0)
        raise RuntimeError("crash")

    def parent():
        try:
            yield env.process(child())
        except RuntimeError:
            outcome.append("saw failure")

    env.process(parent())
    env.run()
    assert outcome == ["saw failure"]


def test_yielding_non_event_is_an_error():
    env = Environment()

    def worker():
        yield 42

    env.process(worker())
    with pytest.raises(SimulationError):
        env.run()


def test_process_needs_a_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_is_alive_tracks_lifetime():
    env = Environment()

    def worker():
        yield env.timeout(5.0)

    process = env.process(worker())
    assert process.is_alive
    env.run()
    assert not process.is_alive
