"""Tests for the fairness measures."""

import math

import pytest

from repro.analysis.fairness import delay_spread, fairness_report, jain_index
from repro.config import SystemConfig
from repro.core import RsinSystem
from repro.workload import Workload


class TestJainIndex:
    def test_equal_values_are_perfectly_fair(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_bounds(self):
        values = [0.5, 1.5, 4.0, 0.1]
        index = jain_index(values)
        assert 1.0 / len(values) <= index <= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])


class TestDelaySpread:
    def test_spread(self):
        assert delay_spread([1.0, 2.0, 4.0]) == 4.0

    def test_zero_minimum_is_infinite(self):
        assert delay_spread([0.0, 1.0]) == math.inf

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            delay_spread([])


class TestFairnessReport:
    def run_system(self, arbitration):
        system = RsinSystem(
            SystemConfig.parse("8/1x1x1 SBUS/8"),
            Workload(arrival_rate=0.095, transmission_rate=1.0,
                     service_rate=1.0),
            seed=11, arbitration=arbitration)
        system.run(horizon=30_000.0, warmup=3_000.0)
        return fairness_report(system)

    def test_priority_less_fair_than_random(self):
        priority = self.run_system("priority")
        random_policy = self.run_system("random")
        assert priority["jain_index"] < random_policy["jain_index"]
        assert priority["spread"] > 2.0 * random_policy["spread"]
        assert random_policy["jain_index"] > 0.95

    def test_report_requires_a_run(self):
        system = RsinSystem(
            SystemConfig.parse("4/1x4x4 XBAR/1"),
            Workload(0.05, 1.0, 0.2))
        with pytest.raises(ValueError):
            fairness_report(system)
