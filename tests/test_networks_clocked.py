"""Tests for the clocked distributed scheduler (Fig. 10 / Fig. 11)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SchedulingError
from repro.networks import (
    ClockedMultistageScheduler,
    CubeTopology,
    InterchangeBox,
    OmegaTopology,
)


def omega_scheduler(free, size=8):
    return ClockedMultistageScheduler(OmegaTopology(size), free)


class TestInterchangeBox:
    def test_free_box_allows_both_outputs(self):
        box = InterchangeBox(0, 0)
        assert box.allowed_outputs(0) == [0, 1]

    def test_one_circuit_forces_the_setting(self):
        box = InterchangeBox(0, 0)
        box.engage(0, 1)
        assert box.allowed_outputs(1) == [0]

    def test_saturated_box_allows_nothing(self):
        box = InterchangeBox(0, 0)
        box.engage(0, 0)
        box.engage(1, 1)
        with pytest.raises(SchedulingError):
            box.allowed_outputs(0)

    def test_output_reuse_rejected(self):
        box = InterchangeBox(0, 0)
        box.engage(0, 1)
        with pytest.raises(SchedulingError):
            box.engage(1, 1)

    def test_disengage(self):
        box = InterchangeBox(0, 0)
        box.engage(0, 0)
        box.disengage(0)
        assert box.allowed_outputs(0) == [0, 1]
        with pytest.raises(SchedulingError):
            box.disengage(0)

    def test_status_reflects_registers_and_links(self):
        box = InterchangeBox(0, 0)
        box.set_available(0, 0, True)
        assert box.status_for_input(0, link_free=lambda port: True)
        assert not box.status_for_input(0, link_free=lambda port: False)
        box.set_available(0, 0, False)
        assert not box.status_for_input(0, link_free=lambda port: True)


class TestFig11:
    """The paper's worked example, reproduced exactly (E5)."""

    def test_all_requests_allocated(self):
        result = omega_scheduler({0: 1, 1: 1, 4: 1, 5: 1}).run([0, 3, 4, 5])
        assert len(result.allocated) == 4
        assert len(result.blocked) == 0

    def test_average_boxes_is_three_and_a_half(self):
        result = omega_scheduler({0: 1, 1: 1, 4: 1, 5: 1}).run([0, 3, 4, 5])
        assert result.average_hops == 3.5
        assert result.total_hops == 14

    def test_each_port_used_once(self):
        result = omega_scheduler({0: 1, 1: 1, 4: 1, 5: 1}).run([0, 3, 4, 5])
        ports = sorted(o.port for o in result.allocated)
        assert ports == [0, 1, 4, 5]

    def test_rejected_request_reroutes(self):
        """Exactly one request is rejected once and re-routes (5 box visits)."""
        result = omega_scheduler({0: 1, 1: 1, 4: 1, 5: 1}).run([0, 3, 4, 5])
        hop_counts = sorted(o.hops for o in result.outcomes.values())
        assert hop_counts == [3, 3, 3, 5]


class TestGeneralBehaviour:
    def test_single_request_takes_minimum_path(self):
        result = omega_scheduler({6: 1}).run([2])
        outcome = result.outcomes[2]
        assert outcome.port == 6
        assert outcome.hops == 3

    def test_no_free_resources_blocks_everything(self):
        result = omega_scheduler({}).run([0, 1])
        assert len(result.blocked) == 2
        assert result.blocking_fraction == 1.0

    def test_fewer_resources_than_requests(self):
        result = omega_scheduler({3: 1}).run([0, 1, 2])
        assert len(result.allocated) == 1
        assert len(result.blocked) == 2

    def test_multiple_resources_per_port(self):
        """Two requests can land on the same port when it has two resources
        (they use the same output link one after another? No — the link is
        held by the established circuit, so the second goes elsewhere or
        blocks; with r=2 on a single port only one allocation can hold the
        port link at a time)."""
        result = omega_scheduler({3: 2}).run([0, 1])
        # The port's bus (output link) is circuit-held by the first winner.
        assert len(result.allocated) == 1

    def test_full_load_full_pool_allocates_everything(self):
        result = omega_scheduler({port: 1 for port in range(8)}).run(list(range(8)))
        assert len(result.allocated) == 8
        ports = sorted(o.port for o in result.allocated)
        assert ports == list(range(8))

    def test_duplicate_requesters_rejected(self):
        with pytest.raises(ConfigurationError):
            omega_scheduler({0: 1}).run([1, 1])

    def test_out_of_range_requester_rejected(self):
        with pytest.raises(ConfigurationError):
            omega_scheduler({0: 1}).run([8])

    def test_bad_resource_map_rejected(self):
        with pytest.raises(ConfigurationError):
            omega_scheduler({9: 1})
        with pytest.raises(ConfigurationError):
            omega_scheduler({0: -1})

    def test_cube_topology_supported(self):
        scheduler = ClockedMultistageScheduler(CubeTopology(8), {2: 1, 5: 1})
        result = scheduler.run([0, 7])
        assert len(result.allocated) == 2


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_allocations_are_consistent(self, data):
        size = data.draw(st.sampled_from([4, 8]))
        requesters = data.draw(st.lists(
            st.integers(0, size - 1), unique=True, min_size=1, max_size=size))
        free_ports = data.draw(st.lists(
            st.integers(0, size - 1), unique=True, min_size=0, max_size=size))
        scheduler = omega_scheduler({p: 1 for p in free_ports}, size=size)
        result = scheduler.run(requesters)
        allocated_ports = [o.port for o in result.allocated]
        # No port oversubscribed, no phantom ports.
        assert len(allocated_ports) == len(set(allocated_ports))
        assert set(allocated_ports) <= set(free_ports)
        # Never more allocations than feasible.
        assert len(result.allocated) <= min(len(requesters), len(free_ports))
        # Hops at least the stage count for every allocated request.
        for outcome in result.allocated:
            assert outcome.hops >= scheduler.topology.stages

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_terminates_quickly(self, data):
        size = 8
        requesters = data.draw(st.lists(
            st.integers(0, size - 1), unique=True, min_size=1, max_size=size))
        free_ports = data.draw(st.lists(
            st.integers(0, size - 1), unique=True, min_size=1, max_size=size))
        scheduler = omega_scheduler({p: 1 for p in free_ports})
        result = scheduler.run(requesters, max_ticks=500)
        assert result.ticks < 500
