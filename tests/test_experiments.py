"""Tests for the experiment registry, figure specs, and reports."""

import pytest

from repro.analysis.blocking import BlockingPoint
from repro.errors import ConfigurationError
from repro.experiments import (
    EXPERIMENT_IDS,
    FIG11_EXPECTED_AVERAGE_HOPS,
    FIGURE_SPECS,
    cycle_time_comparison,
    fig11_example,
    figure_series,
    format_blocking_table,
    format_rows,
    format_series_table,
    intensity_grid,
    run_experiment,
    sec2_mapping_example,
)


class TestFigureSpecs:
    def test_all_six_delay_figures_defined(self):
        assert set(FIGURE_SPECS) == {"fig4", "fig5", "fig7", "fig8",
                                     "fig12", "fig13"}

    def test_ratio_pairs(self):
        assert FIGURE_SPECS["fig4"].mu_ratio == 0.1
        assert FIGURE_SPECS["fig5"].mu_ratio == 1.0
        assert FIGURE_SPECS["fig12"].mu_ratio == 0.1

    def test_sbus_figures_list_the_paper_partitions(self):
        triplets = [triplet for _label, triplet in FIGURE_SPECS["fig4"].curves]
        for expected in ("16/1x1x1 SBUS/32", "16/2x1x1 SBUS/16",
                         "16/8x1x1 SBUS/4", "16/16x1x1 SBUS/2",
                         "16/16x1x1 SBUS/3", "16/16x1x1 SBUS/4",
                         "16/16x1x1 SBUS/inf"):
            assert expected in triplets

    def test_intensity_grid(self):
        grid = intensity_grid(0.25, start=0.25, stop=1.0)
        assert grid == [0.25, 0.5, 0.75, 1.0]
        with pytest.raises(ConfigurationError):
            intensity_grid(0.0)

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigurationError):
            figure_series("fig99")
        with pytest.raises(ConfigurationError):
            figure_series("fig4", quality="extreme")


class TestFig11:
    def test_reproduces_paper_average(self):
        result = fig11_example()
        assert result.average_hops == FIG11_EXPECTED_AVERAGE_HOPS
        assert len(result.allocated) == 4


class TestSec2:
    def test_mapping_example(self):
        data = sec2_mapping_example()
        assert data["good_mappings_conflict_free"] == [True] * 4
        assert data["bad_mappings_allocated"] == [2, 2]
        assert data["optimal_allocatable"] == 3


class TestCycles:
    def test_rows_cover_sizes(self):
        rows = cycle_time_comparison(sizes=(4, 8))
        assert [row["N"] for row in rows] == [4, 8]
        for row in rows:
            assert row["distributed_multistage"] < row["centralized_multistage"] \
                or row["N"] <= 4


class TestRegistry:
    def test_ids_cover_every_artifact(self):
        assert set(EXPERIMENT_IDS) >= {"fig4", "fig5", "fig7", "fig8",
                                       "fig11", "fig12", "fig13", "sec2",
                                       "sec6", "blocking", "table2", "cycles"}

    def test_extension_experiments_registered(self):
        assert set(EXPERIMENT_IDS) >= {"bottleneck", "switching",
                                       "deadlock", "multibus"}

    def test_multibus_extension_runs(self):
        result = run_experiment("multibus")
        assert "2 buses" in result.report
        # Two buses beat one at equal total resources.
        assert result.data[1]["d"] < result.data[0]["d"]

    def test_fast_experiments_run(self):
        for exp_id in ("fig11", "sec2", "cycles"):
            result = run_experiment(exp_id)
            assert result.exp_id == exp_id
            assert result.report

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_analytic_figure_runs_fast(self):
        result = run_experiment("fig4", quality="fast")
        assert "fig4" in result.report
        assert len(result.data) == 7  # seven SBUS curves


class TestReports:
    def test_series_table_marks_saturation(self):
        from repro.analysis import analytic_series
        series = [analytic_series("16/1x1x1 SBUS/32", 0.1, [0.2, 0.8])]
        text = format_series_table(series, title="demo")
        assert "demo" in text
        assert "--" in text          # saturated point
        assert "0.20" in text

    def test_blocking_table(self):
        points = [BlockingPoint(request_size=4, trials=10, rsin=0.1,
                                address_random=0.2, address_sequential=0.15,
                                optimal=0.05)]
        text = format_blocking_table(points, full={"address_mapping": 0.3,
                                                   "rsin": 0.15})
        assert "0.300" in text
        assert "RSIN" in text

    def test_format_rows_generic(self):
        text = format_rows([{"a": 1, "b": None}, {"a": 2, "b": 0.5}],
                           columns=["a", "b"], title="t")
        assert "t" in text
        assert "--" in text
        assert "0.5000" in text
