"""Unit tests for the simulation environment run loop."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment
from repro.sim.environment import EmptySchedule


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=7.5).now == 7.5


def test_step_on_empty_queue_raises():
    with pytest.raises(EmptySchedule):
        Environment().step()


def test_run_until_advances_clock_even_without_events():
    env = Environment()
    env.run(until=100.0)
    assert env.now == 100.0


def test_run_until_does_not_process_later_events():
    env = Environment()
    seen = []
    env.timeout(5.0).add_callback(lambda e: seen.append(5.0))
    env.timeout(15.0).add_callback(lambda e: seen.append(15.0))
    env.run(until=10.0)
    assert seen == [5.0]
    assert env.now == 10.0
    env.run()  # drain the rest
    assert seen == [5.0, 15.0]


def test_run_into_the_past_rejected():
    env = Environment()
    env.run(until=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_schedule_into_past_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.schedule(env.event(), delay=-0.5)


def test_events_process_in_time_order():
    env = Environment()
    seen = []
    for delay in (3.0, 1.0, 2.0):
        env.timeout(delay, value=delay).add_callback(
            lambda e: seen.append(e.value))
    env.run()
    assert seen == [1.0, 2.0, 3.0]


def test_ties_break_fifo():
    env = Environment()
    seen = []
    for tag in ("a", "b", "c"):
        env.timeout(1.0, value=tag).add_callback(lambda e: seen.append(e.value))
    env.run()
    assert seen == ["a", "b", "c"]


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4.0)
    env.timeout(2.0)
    assert env.peek() == 2.0


def test_run_until_event_returns_value():
    env = Environment()
    event = env.timeout(3.0, value="payload")
    assert env.run_until_event(event) == "payload"
    assert env.now == 3.0


def test_run_until_event_never_fires_raises():
    env = Environment()
    orphan = env.event()  # never triggered
    env.timeout(1.0)
    with pytest.raises(SimulationError):
        env.run_until_event(orphan)


def test_livelock_guard_bounds_queue_growth():
    """A model that schedules faster than it drains hits the guard."""
    env = Environment(max_queue_length=100)

    def explode(event):
        for _ in range(2):  # two children per event: exponential growth
            env.timeout(1.0).add_callback(explode)

    env.timeout(1.0).add_callback(explode)
    with pytest.raises(SimulationError, match="max_queue_length"):
        env.run(until=1_000.0)


def test_livelock_guard_disabled_with_none():
    env = Environment(max_queue_length=None)
    for _ in range(200):
        env.timeout(1.0)
    env.run()  # no guard, drains fine


def test_livelock_guard_rejects_nonpositive_bound():
    with pytest.raises(SimulationError):
        Environment(max_queue_length=0)


def test_livelock_guard_default_allows_normal_models():
    env = Environment()
    seen = []
    for delay in range(1, 50):
        env.timeout(float(delay)).add_callback(
            lambda e: seen.append(env.now))
    env.run()
    assert len(seen) == 49


def test_nested_scheduling_from_callbacks():
    env = Environment()
    seen = []

    def chain(event):
        seen.append(env.now)
        if env.now < 3.0:
            env.timeout(1.0).add_callback(chain)

    env.timeout(1.0).add_callback(chain)
    env.run()
    assert seen == [1.0, 2.0, 3.0]
