"""Tests for the exact small-m multiple-bus chain (Section IV)."""

import pytest

from repro.errors import ConfigurationError
from repro.markov import solve_sbus
from repro.markov.multibus_chain import MultibusChain, solve_multibus


class TestStructure:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            MultibusChain(0.0, 1.0, 1.0, 2, 2)
        with pytest.raises(ConfigurationError):
            MultibusChain(1.0, 1.0, 1.0, 0, 2)
        with pytest.raises(ConfigurationError):
            MultibusChain(1.0, 1.0, 1.0, 2, 0)

    def test_large_m_refused(self):
        """The paper's point: the state space explodes; m <= 4 only."""
        with pytest.raises(ConfigurationError):
            MultibusChain(1.0, 1.0, 1.0, 5, 2)

    def test_dispatch_prefers_lowest_port(self):
        chain = MultibusChain(1.0, 1.0, 1.0, 3, 2)
        assert chain.dispatch_port(((1, 0), (0, 1), (0, 0))) == 1
        assert chain.dispatch_port(((1, 2), (1, 2), (1, 2))) is None
        assert chain.dispatch_port(((0, 2), (0, 1), (0, 0))) == 1

    def test_queued_states_cannot_dispatch(self):
        """Reachability invariant: a queued task coexists only with fully
        unavailable ports (else it would have been dispatched)."""
        from repro.markov.ctmc import FiniteCTMC
        chain = MultibusChain(0.8, 1.0, 0.4, 2, 2)
        ctmc = FiniteCTMC(chain.transitions,
                          initial_states=[chain.initial_state()],
                          state_filter=lambda s: chain.level(s) <= 12)
        for state in ctmc.states:
            queued, ports = state
            if queued > 0:
                assert chain.dispatch_port(ports) is None


class TestAgainstSingleBus:
    @pytest.mark.parametrize("arrival,ratio,resources", [
        (0.10, 0.1, 2),
        (0.30, 1.0, 3),
    ])
    def test_m1_equals_the_sbus_chain(self, arrival, ratio, resources):
        single = solve_sbus(arrival, 1.0, ratio, resources)
        multi = solve_multibus(arrival, 1.0, ratio, buses=1,
                               resources_per_bus=resources)
        assert multi.mean_delay == pytest.approx(single.mean_delay, rel=1e-6)
        assert multi.bus_utilization == pytest.approx(
            single.bus_utilization, rel=1e-6)
        assert multi.mean_busy_resources == pytest.approx(
            single.mean_busy_resources, rel=1e-6)


class TestConservation:
    def test_throughput_laws(self):
        solution = solve_multibus(0.5, 1.0, 0.3, buses=2, resources_per_bus=2)
        assert solution.mean_busy_buses * 1.0 == pytest.approx(0.5, rel=1e-6)
        assert solution.mean_busy_resources * 0.3 == pytest.approx(
            0.5, rel=1e-6)

    def test_two_buses_beat_one_at_equal_resources(self):
        """Splitting 4 resources over 2 buses removes bus serialization."""
        one = solve_sbus(0.5, 1.0, 0.3, 4)
        two = solve_multibus(0.5, 1.0, 0.3, buses=2, resources_per_bus=2)
        assert two.mean_delay < one.mean_delay


class TestAgainstSimulation:
    """The chain is an infinite-source model: it excludes the small
    per-processor self-serialization (a queued task waits out its own
    processor's transmission, an excess of order lambda/mu_n per task), so
    it lower-bounds the simulator and converges to it as p grows at fixed
    aggregate load and as resource queueing dominates."""

    def test_m2_matches_crossbar_simulator_when_resource_bound(self):
        from repro.core import simulate
        from repro.workload import Workload
        aggregate = 0.70   # resource utilization 0.78: queueing dominates
        workload = Workload(arrival_rate=aggregate / 16,
                            transmission_rate=1.0, service_rate=0.15)
        result = simulate("16/1x16x2 XBAR/3", workload, horizon=200_000.0,
                          warmup=15_000.0, seed=13)
        exact = solve_multibus(aggregate, 1.0, 0.15, buses=2,
                               resources_per_bus=3)
        assert result.mean_queueing_delay == pytest.approx(
            exact.mean_delay, rel=0.12)

    def test_chain_lower_bounds_finite_source_simulation(self):
        from repro.core import simulate
        from repro.workload import Workload
        workload = Workload(arrival_rate=0.04, transmission_rate=1.0,
                            service_rate=0.15)
        result = simulate("8/1x8x2 XBAR/3", workload, horizon=100_000.0,
                          warmup=8_000.0, seed=13)
        exact = solve_multibus(8 * 0.04, 1.0, 0.15, buses=2,
                               resources_per_bus=3)
        assert exact.mean_delay < result.mean_queueing_delay
        # ... but only by the self-serialization margin.
        assert result.mean_queueing_delay < 1.5 * exact.mean_delay

    def test_finite_source_excess_shrinks_with_processor_count(self):
        from repro.core import simulate
        from repro.workload import Workload
        exact = solve_multibus(0.32, 1.0, 0.15, buses=2,
                               resources_per_bus=3).mean_delay
        excesses = []
        for processors in (8, 32):
            workload = Workload(arrival_rate=0.32 / processors,
                                transmission_rate=1.0, service_rate=0.15)
            result = simulate(f"{processors}/1x{processors}x2 XBAR/3",
                              workload, horizon=150_000.0, warmup=10_000.0,
                              seed=13)
            excesses.append(result.mean_queueing_delay - exact)
        assert excesses[1] < excesses[0]
