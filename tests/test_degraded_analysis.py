"""Tests for the degraded-capacity (k of m resources up) analysis."""

import math

import pytest

from repro.analysis.degraded import (
    availability_distribution,
    degraded_metrics,
    degraded_system_metrics,
    degraded_throughput_curve,
    machine_repair_distribution,
)
from repro.config import SystemConfig
from repro.core.system import simulate
from repro.errors import ConfigurationError
from repro.faults import FaultConfig, ResourceFault, RetryPolicy
from repro.queueing import mmc_metrics
from repro.workload import Workload


class TestAvailabilityDistribution:
    def test_binomial_pmf(self):
        pmf = availability_distribution(2, 0.9)
        assert pmf == pytest.approx((0.01, 0.18, 0.81))
        assert sum(pmf) == pytest.approx(1.0)

    def test_perfect_and_dead_fleet(self):
        assert availability_distribution(3, 1.0) == (0.0, 0.0, 0.0, 1.0)
        assert availability_distribution(3, 0.0) == (1.0, 0.0, 0.0, 0.0)

    def test_matches_machine_repair_ctmc(self):
        """Binomial(m, A) is the machine-repair chain's stationary law."""
        for servers, mttf, mttr in [(4, 900.0, 100.0), (8, 50.0, 200.0),
                                    (1, 10.0, 10.0)]:
            binomial = availability_distribution(
                servers, mttf / (mttf + mttr))
            chain = machine_repair_distribution(servers, mttf, mttr)
            assert chain == pytest.approx(binomial, abs=1e-12)

    def test_infinite_mttf_concentrates_on_all_up(self):
        assert machine_repair_distribution(3, math.inf, 5.0)[-1] == 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            availability_distribution(0, 0.5)
        with pytest.raises(ConfigurationError):
            availability_distribution(2, 1.5)
        with pytest.raises(ConfigurationError):
            machine_repair_distribution(2, -1.0, 5.0)


class TestDegradedMetrics:
    def test_reduces_to_mmc_when_always_up(self):
        metrics = degraded_metrics(arrival_rate=0.4, service_rate=0.1,
                                   servers=8, mttf=math.inf, mttr=1.0)
        exact = mmc_metrics(0.4, 0.1, 8)
        assert metrics.throughput == pytest.approx(0.4)
        assert metrics.mean_queueing_delay == \
            pytest.approx(exact.mean_waiting_time)
        assert metrics.saturated_probability == 0.0
        assert metrics.capacity_factor == 1.0

    def test_throughput_mixture(self):
        # Two servers, A = 0.5, saturated offered load: throughput is the
        # availability-weighted capacity 0.25*0 + 0.5*mu + 0.25*2mu.
        metrics = degraded_metrics(arrival_rate=10.0, service_rate=1.0,
                                   servers=2, mttf=50.0, mttr=50.0)
        assert metrics.availability == pytest.approx(0.5)
        assert metrics.throughput == pytest.approx(0.25 * 0 + 0.5 * 1 + 0.25 * 2)
        assert metrics.saturated_probability == pytest.approx(1.0)
        assert metrics.throughput_loss == pytest.approx(2.0 - 1.0)

    def test_delay_increases_as_availability_drops(self):
        healthy = degraded_metrics(0.4, 0.1, 8, mttf=math.inf, mttr=1.0)
        degraded = degraded_metrics(0.4, 0.1, 8, mttf=400.0, mttr=100.0)
        worse = degraded_metrics(0.4, 0.1, 8, mttf=100.0, mttr=100.0)
        assert healthy.mean_queueing_delay < degraded.mean_queueing_delay
        assert degraded.expected_servers_up > worse.expected_servers_up

    def test_throughput_curve_is_monotone_and_capped(self):
        curve = degraded_throughput_curve(
            service_rate=0.1, servers=4, mttf=900.0, mttr=100.0,
            arrival_rates=(0.05, 0.1, 0.2, 0.4, 0.8, 1.6))
        values = [throughput for _rate, throughput in curve]
        assert values == sorted(values)
        # Cap: expected capacity is A * servers * mu.
        assert values[-1] <= 0.9 * 4 * 0.1 + 1e-12


class TestSystemLevel:
    WORKLOAD = Workload(arrival_rate=0.05, transmission_rate=20.0,
                        service_rate=0.1)

    def _config(self, triplet="8/8x1x1 SBUS/4", mttf=900.0, mttr=100.0):
        return SystemConfig.parse(triplet).with_faults(FaultConfig(
            models=(ResourceFault(mttf=mttf, mttr=mttr),),
            retry=RetryPolicy(max_retries=10)))

    def test_per_port_decomposition(self):
        prediction = degraded_system_metrics(self._config(), self.WORKLOAD)
        assert prediction.ports == 8
        assert prediction.per_port.servers == 4
        assert prediction.availability == pytest.approx(0.9)
        assert prediction.expected_resources_up == pytest.approx(0.9 * 32)
        assert prediction.throughput == \
            pytest.approx(8 * prediction.per_port.throughput)

    def test_requires_resource_fault_model(self):
        config = SystemConfig.parse("8/8x1x1 SBUS/4")
        with pytest.raises(ConfigurationError):
            degraded_system_metrics(config, self.WORKLOAD)
        with pytest.raises(ConfigurationError):
            degraded_system_metrics(
                config.with_faults(FaultConfig()), self.WORKLOAD)

    def test_cross_validation_light_load(self):
        """Simulated fault-injected throughput within 5% of the model."""
        config = self._config("8/1x1x1 SBUS/16", mttf=500.0, mttr=125.0)
        prediction = degraded_system_metrics(config, self.WORKLOAD)
        result = simulate(config, self.WORKLOAD, horizon=40_000.0,
                          warmup=4_000.0, seed=5)
        assert result.availability.total_failures > 0
        assert result.throughput == \
            pytest.approx(prediction.throughput, rel=0.05)
